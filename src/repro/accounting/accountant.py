"""High-level RDP accountant used by the federated trainer.

The accountant accumulates *events* -- (sampling rate, noise multiplier,
step count) triples -- maintains the composed RDP curve on a shared order
grid, and converts to (eps, delta)-DP (optionally through a group-privacy
conversion) on demand.  It mirrors the role Opacus's ``RDPAccountant``
plays in the paper's reference implementation.

Per-method usage (see :mod:`repro.core.privacy` for the wiring):

- ULDP-NAIVE / ULDP-AVG (Theorems 1 and 3): one Gaussian event with q = 1
  per round; the user-level noise multiplier is sigma by construction.
- ULDP-AVG with user-level sub-sampling (Remark 1): one sub-sampled
  Gaussian event with q = sampling rate per round.
- ULDP-GROUP-k (Theorem 2): per-silo DP-SGD events with q = record-level
  sampling rate; ``group_epsilon`` applies Lemma 6 + Lemma 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accounting.conversion import rdp_curve_to_dp
from repro.accounting.group import group_epsilon_via_normal_dp, group_epsilon_via_rdp
from repro.accounting.rdp import DEFAULT_ALPHAS, gaussian_rdp_curve
from repro.accounting.subsampled import subsampled_gaussian_rdp_curve


@dataclass(frozen=True)
class RdpEvent:
    """One accounted mechanism invocation (possibly repeated ``steps`` times)."""

    noise_multiplier: float
    sample_rate: float = 1.0
    steps: int = 1

    def curve(self, alphas: np.ndarray) -> np.ndarray:
        if self.sample_rate >= 1.0:
            return gaussian_rdp_curve(self.noise_multiplier, self.steps, alphas=alphas)
        return subsampled_gaussian_rdp_curve(
            self.sample_rate, self.noise_multiplier, self.steps, alphas=alphas
        )


@dataclass
class PrivacyAccountant:
    """Composable RDP accountant over a fixed order grid."""

    alphas: np.ndarray = field(default_factory=lambda: DEFAULT_ALPHAS.copy())
    _rhos: np.ndarray = field(init=False)
    history: list[RdpEvent] = field(init=False, default_factory=list)
    # Cache of per-(q, sigma) single-step curves: computing the sub-sampled
    # curve is the expensive part and trainers call step() every round with
    # identical parameters.
    _curve_cache: dict[tuple[float, float], np.ndarray] = field(
        init=False, default_factory=dict
    )

    def __post_init__(self):
        self._rhos = np.zeros_like(self.alphas)

    def step(
        self, noise_multiplier: float, sample_rate: float = 1.0, steps: int = 1
    ) -> None:
        """Account ``steps`` compositions of a (sub-sampled) Gaussian."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        if steps == 0:
            return
        event = RdpEvent(noise_multiplier, sample_rate, steps)
        if noise_multiplier <= 0:
            # A noiseless release has unbounded privacy loss; record an
            # infinite curve so epsilon queries report +inf rather than a
            # spurious finite value (used by tests that disable noise).
            self._rhos = np.full_like(self._rhos, np.inf)
            self.history.append(event)
            return
        key = (float(sample_rate), float(noise_multiplier))
        if key not in self._curve_cache:
            self._curve_cache[key] = RdpEvent(noise_multiplier, sample_rate, 1).curve(
                self.alphas
            )
        self._rhos = self._rhos + steps * self._curve_cache[key]
        self.history.append(event)

    @property
    def rdp_curve(self) -> np.ndarray:
        """Current composed RDP curve (copy)."""
        return self._rhos.copy()

    def get_epsilon(self, delta: float) -> float:
        """Best (eps, delta)-DP guarantee for the composed mechanism.

        Returns +inf when a noiseless event was recorded.
        """
        return self.get_epsilon_and_alpha(delta)[0]

    def get_epsilon_and_alpha(self, delta: float) -> tuple[float, float]:
        if not np.any(np.isfinite(self._rhos)):
            return float("inf"), float("nan")
        return rdp_curve_to_dp(self._rhos, delta, alphas=self.alphas)

    def get_group_epsilon(
        self, delta: float, group_size: int, route: str = "rdp"
    ) -> float:
        """GDP epsilon after a group-privacy conversion.

        Args:
            delta: target delta.
            group_size: k (rounded down to a power of two on the RDP route).
            route: ``"rdp"`` (Lemma 6, default -- what the paper's
                experiments report) or ``"dp"`` (Lemma 5 + footnote-1
                search).
        """
        if route == "rdp":
            return group_epsilon_via_rdp(self._rhos, group_size, delta, alphas=self.alphas)
        if route == "dp":
            return group_epsilon_via_normal_dp(
                self._rhos, group_size, delta, alphas=self.alphas
            )
        raise ValueError(f"unknown group conversion route: {route!r}")

    def merge_max(self, other: "PrivacyAccountant") -> "PrivacyAccountant":
        """Parallel composition (order-wise max) with another accountant.

        Used for ULDP-GROUP: silos hold disjoint databases, so the joint
        guarantee is the worst per-silo curve (Theorem 2).
        """
        if self.alphas.shape != other.alphas.shape or np.any(self.alphas != other.alphas):
            raise ValueError("accountants must share the order grid")
        merged = PrivacyAccountant(alphas=self.alphas.copy())
        merged._rhos = np.maximum(self._rhos, other._rhos)
        merged.history = [*self.history, *other.history]
        return merged

    def reset(self) -> None:
        self._rhos = np.zeros_like(self.alphas)
        self.history.clear()
