"""High-level RDP accountant used by the federated trainer.

The accountant accumulates *events* -- (sampling rate, noise multiplier,
step count) triples -- maintains the composed RDP curve on a shared order
grid, and converts to (eps, delta)-DP (optionally through a group-privacy
conversion) on demand.  It mirrors the role Opacus's ``RDPAccountant``
plays in the paper's reference implementation.

Per-method usage (see :mod:`repro.core.privacy` for the wiring):

- ULDP-NAIVE / ULDP-AVG (Theorems 1 and 3): one Gaussian event with q = 1
  per round; the user-level noise multiplier is sigma by construction.
- ULDP-AVG with user-level sub-sampling (Remark 1): one sub-sampled
  Gaussian event with q = sampling rate per round.
- ULDP-GROUP-k (Theorem 2): per-silo DP-SGD events with q = record-level
  sampling rate; ``group_epsilon`` applies Lemma 6 + Lemma 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accounting.conversion import rdp_curve_to_dp
from repro.accounting.group import group_epsilon_via_normal_dp, group_epsilon_via_rdp
from repro.accounting.rdp import DEFAULT_ALPHAS, gaussian_rdp_curve
from repro.accounting.subsampled import subsampled_gaussian_rdp_curve


@dataclass(frozen=True)
class RdpEvent:
    """One accounted mechanism invocation (possibly repeated ``steps`` times)."""

    noise_multiplier: float
    sample_rate: float = 1.0
    steps: int = 1

    def curve(self, alphas: np.ndarray) -> np.ndarray:
        if self.sample_rate >= 1.0:
            return gaussian_rdp_curve(self.noise_multiplier, self.steps, alphas=alphas)
        return subsampled_gaussian_rdp_curve(
            self.sample_rate, self.noise_multiplier, self.steps, alphas=alphas
        )


@dataclass(frozen=True)
class ReleaseEvent:
    """Sensitivity bookkeeping for one partial-participation release.

    Under the simulation runtime each aggregate release may realise a
    sensitivity other than C (carryover gains, per-release weight sums) and
    a noise scale other than sigma * C (dropped silos without noise
    rescaling, staleness-discounted async noise).  The honest per-release
    noise multiplier is ``sigma * noise_scale / sensitivity``.
    """

    noise_multiplier: float
    sample_rate: float = 1.0
    #: Realised sensitivity in units of C (max per-user weight sum applied
    #: in this release); 0 means the release carried no user signal.
    sensitivity: float = 1.0
    #: Realised aggregate noise std in units of sigma * C.
    noise_scale: float = 1.0

    @property
    def effective_noise_multiplier(self) -> float:
        """The sigma actually protecting this release's worst-case user."""
        if self.sensitivity <= 0:
            return float("inf")
        return self.noise_multiplier * self.noise_scale / self.sensitivity


@dataclass
class PrivacyAccountant:
    """Composable RDP accountant over a fixed order grid."""

    alphas: np.ndarray = field(default_factory=lambda: DEFAULT_ALPHAS.copy())
    _rhos: np.ndarray = field(init=False)
    history: list[RdpEvent] = field(init=False, default_factory=list)
    #: Per-release sensitivity bookkeeping appended by :meth:`step_release`
    #: (empty for trainers that only ever call :meth:`step`).
    releases: list[ReleaseEvent] = field(init=False, default_factory=list)
    # Cache of per-(q, sigma) single-step curves: computing the sub-sampled
    # curve is the expensive part and trainers call step() every round with
    # identical parameters.
    _curve_cache: dict[tuple[float, float], np.ndarray] = field(
        init=False, default_factory=dict
    )

    def __post_init__(self):
        self._rhos = np.zeros_like(self.alphas)

    def step(
        self, noise_multiplier: float, sample_rate: float = 1.0, steps: int = 1
    ) -> None:
        """Account ``steps`` compositions of a (sub-sampled) Gaussian."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        if steps == 0:
            return
        event = RdpEvent(noise_multiplier, sample_rate, steps)
        if noise_multiplier <= 0:
            # A noiseless release has unbounded privacy loss; record an
            # infinite curve so epsilon queries report +inf rather than a
            # spurious finite value (used by tests that disable noise).
            self._rhos = np.full_like(self._rhos, np.inf)
            self.history.append(event)
            return
        key = (float(sample_rate), float(noise_multiplier))
        if key not in self._curve_cache:
            self._curve_cache[key] = RdpEvent(noise_multiplier, sample_rate, 1).curve(
                self.alphas
            )
        self._rhos = self._rhos + steps * self._curve_cache[key]
        self.history.append(event)

    def step_release(
        self,
        noise_multiplier: float,
        sample_rate: float = 1.0,
        sensitivity: float = 1.0,
        noise_scale: float = 1.0,
    ) -> None:
        """Account one partial-participation release honestly.

        The release's effective noise multiplier is
        ``sigma * noise_scale / sensitivity`` (see :class:`ReleaseEvent`):
        carryover gains (sensitivity > 1) *increase* the privacy cost,
        silos dropping without noise rescaling (noise_scale < 1) do too.
        A release with zero sensitivity carries no user signal and consumes
        no budget (it is still logged for the honesty report).

        Under full participation (sensitivity = noise_scale = 1) this is
        exactly :meth:`step` -- the oracle-equivalence invariant.
        """
        if sensitivity < 0:
            raise ValueError("sensitivity must be non-negative")
        if noise_scale < 0:
            raise ValueError("noise scale must be non-negative")
        event = ReleaseEvent(noise_multiplier, sample_rate, sensitivity, noise_scale)
        self.releases.append(event)
        if sensitivity == 0:
            return
        self.step(event.effective_noise_multiplier, sample_rate=sample_rate)

    @property
    def rdp_curve(self) -> np.ndarray:
        """Current composed RDP curve (copy)."""
        return self._rhos.copy()

    def get_epsilon(self, delta: float) -> float:
        """Best (eps, delta)-DP guarantee for the composed mechanism.

        Returns +inf when a noiseless event was recorded.
        """
        return self.get_epsilon_and_alpha(delta)[0]

    def get_epsilon_and_alpha(self, delta: float) -> tuple[float, float]:
        if not np.any(np.isfinite(self._rhos)):
            return float("inf"), float("nan")
        return rdp_curve_to_dp(self._rhos, delta, alphas=self.alphas)

    def get_group_epsilon(
        self, delta: float, group_size: int, route: str = "rdp"
    ) -> float:
        """GDP epsilon after a group-privacy conversion.

        Args:
            delta: target delta.
            group_size: k (rounded down to a power of two on the RDP route).
            route: ``"rdp"`` (Lemma 6, default -- what the paper's
                experiments report) or ``"dp"`` (Lemma 5 + footnote-1
                search).
        """
        if route == "rdp":
            return group_epsilon_via_rdp(self._rhos, group_size, delta, alphas=self.alphas)
        if route == "dp":
            return group_epsilon_via_normal_dp(
                self._rhos, group_size, delta, alphas=self.alphas
            )
        raise ValueError(f"unknown group conversion route: {route!r}")

    def merge_max(self, other: "PrivacyAccountant") -> "PrivacyAccountant":
        """Parallel composition (order-wise max) with another accountant.

        Used for ULDP-GROUP: silos hold disjoint databases, so the joint
        guarantee is the worst per-silo curve (Theorem 2).
        """
        if self.alphas.shape != other.alphas.shape or np.any(self.alphas != other.alphas):
            raise ValueError("accountants must share the order grid")
        merged = PrivacyAccountant(alphas=self.alphas.copy())
        merged._rhos = np.maximum(self._rhos, other._rhos)
        merged.history = [*self.history, *other.history]
        return merged

    def reset(self) -> None:
        self._rhos = np.zeros_like(self.alphas)
        self.history.clear()
        self.releases.clear()

    # -- checkpoint serialisation --------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serialisable snapshot restoring the accountant bit-exactly.

        Floats survive the JSON round-trip exactly (shortest-repr floats
        parse back to the identical IEEE-754 value), so a resumed
        accountant reports the same epsilon to the last bit.  The curve
        cache is not saved; it is a pure performance memo.
        """
        return {
            "schema": "uldp-fl-accountant/v1",
            "alphas": [float(a) for a in self.alphas],
            "rhos": [float(r) for r in self._rhos],
            "history": [
                [e.noise_multiplier, e.sample_rate, e.steps] for e in self.history
            ],
            "releases": [
                [e.noise_multiplier, e.sample_rate, e.sensitivity, e.noise_scale]
                for e in self.releases
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "PrivacyAccountant":
        """Inverse of :meth:`state_dict`."""
        if state.get("schema") != "uldp-fl-accountant/v1":
            raise ValueError(f"unknown accountant schema: {state.get('schema')!r}")
        acct = cls(alphas=np.asarray(state["alphas"], dtype=np.float64))
        acct._rhos = np.asarray(state["rhos"], dtype=np.float64)
        acct.history = [
            RdpEvent(sigma, q, int(steps)) for sigma, q, steps in state["history"]
        ]
        acct.releases = [
            ReleaseEvent(sigma, q, sens, scale)
            for sigma, q, sens, scale in state["releases"]
        ]
        return acct
