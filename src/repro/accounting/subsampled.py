"""RDP of the Poisson-sub-sampled Gaussian mechanism.

Two bounds are provided:

- :func:`subsampled_gaussian_rdp` -- the numerically tight bound of
  Mironov, Talwar & Zhang, "Renyi differential privacy of the sampled
  Gaussian mechanism" (2019), the computation Opacus uses.  For integer
  orders it evaluates a finite binomial sum; for fractional orders the
  convergent two-sided series with erfc terms.  All computation happens in
  log space for stability.
- :func:`subsampled_rdp_closed_form` -- the closed-form upper bound of
  Wang, Balle & Kasiviswanathan (2019), quoted as Lemma 4 in the paper.
  Looser but cheap; used for cross-checking.

Both take the sampling rate q (probability a record/user participates in a
step) and the noise multiplier sigma.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

from repro.accounting.rdp import DEFAULT_ALPHAS, gaussian_rdp


def _log_add(log_a: float, log_b: float) -> float:
    """log(exp(log_a) + exp(log_b)) without overflow."""
    if log_a == -math.inf:
        return log_b
    if log_b == -math.inf:
        return log_a
    hi, lo = max(log_a, log_b), min(log_a, log_b)
    return hi + math.log1p(math.exp(lo - hi))


def _log_sub(log_a: float, log_b: float) -> float:
    """log(exp(log_a) - exp(log_b)); requires log_a >= log_b."""
    if log_b == -math.inf:
        return log_a
    if log_b > log_a:
        raise ValueError("log_sub requires log_a >= log_b")
    if log_a == log_b:
        return -math.inf
    return log_a + math.log1p(-math.exp(log_b - log_a))


def _log_comb(n: float, k: int) -> float:
    """log of the binomial coefficient C(n, k) for integer n."""
    return special.gammaln(n + 1) - special.gammaln(k + 1) - special.gammaln(n - k + 1)


def _log_erfc(x: float) -> float:
    """log(erfc(x)), stable for large positive x."""
    # erfc(x) = 2 * ndtr(-sqrt(2) x); log_ndtr is stable in both tails.
    return math.log(2.0) + special.log_ndtr(-x * 2.0**0.5)


def _compute_log_a_int(q: float, sigma: float, alpha: int) -> float:
    """log A(alpha) for integer alpha via the finite binomial sum."""
    log_a = -math.inf
    for i in range(alpha + 1):
        log_coef_i = _log_comb(alpha, i) + i * math.log(q) + (alpha - i) * math.log1p(-q)
        s = log_coef_i + (i * i - i) / (2.0 * sigma**2)
        log_a = _log_add(log_a, s)
    return log_a


def _compute_log_a_frac(q: float, sigma: float, alpha: float) -> float:
    """log A(alpha) for fractional alpha via the two-sided convergent series."""
    log_a0, log_a1 = -math.inf, -math.inf
    i = 0
    z0 = sigma**2 * math.log(1.0 / q - 1.0) + 0.5
    while True:
        coef = special.binom(alpha, i)
        log_coef = math.log(abs(coef)) if coef != 0 else -math.inf
        j = alpha - i

        log_t0 = log_coef + i * math.log(q) + j * math.log1p(-q)
        log_t1 = log_coef + j * math.log(q) + i * math.log1p(-q)

        log_e0 = math.log(0.5) + _log_erfc((i - z0) / (math.sqrt(2) * sigma))
        log_e1 = math.log(0.5) + _log_erfc((z0 - j) / (math.sqrt(2) * sigma))

        log_s0 = log_t0 + (i * i - i) / (2.0 * sigma**2) + log_e0
        log_s1 = log_t1 + (j * j - j) / (2.0 * sigma**2) + log_e1

        if coef > 0:
            log_a0 = _log_add(log_a0, log_s0)
            log_a1 = _log_add(log_a1, log_s1)
        else:
            log_a0 = _log_sub(log_a0, log_s0)
            log_a1 = _log_sub(log_a1, log_s1)

        i += 1
        if max(log_s0, log_s1) < -30 and i > alpha:
            break

    return _log_add(log_a0, log_a1)


def subsampled_gaussian_rdp(q: float, sigma: float, alpha: float) -> float:
    """Tight RDP bound of one sub-sampled Gaussian step at a single order.

    Args:
        q: Poisson sampling rate in [0, 1].
        sigma: noise multiplier.
        alpha: Renyi order > 1.

    Returns:
        rho(alpha) = log(A(alpha)) / (alpha - 1).
    """
    if not 0 <= q <= 1:
        raise ValueError("sampling rate must lie in [0, 1]")
    if sigma <= 0:
        raise ValueError("noise multiplier must be positive")
    if alpha <= 1:
        raise ValueError("Renyi order must exceed 1")
    if q == 0:
        return 0.0
    if q == 1:
        return gaussian_rdp(sigma, alpha)
    if float(alpha).is_integer():
        log_a = _compute_log_a_int(q, sigma, int(alpha))
    else:
        log_a = _compute_log_a_frac(q, sigma, alpha)
    return log_a / (alpha - 1.0)


def subsampled_gaussian_rdp_curve(
    q: float, sigma: float, steps: int = 1, alphas: np.ndarray | None = None
) -> np.ndarray:
    """RDP curve of ``steps`` compositions of the sub-sampled Gaussian."""
    if steps < 0:
        raise ValueError("steps must be non-negative")
    alphas = DEFAULT_ALPHAS if alphas is None else np.asarray(alphas, dtype=np.float64)
    return steps * np.array([subsampled_gaussian_rdp(q, sigma, a) for a in alphas])


def subsampled_rdp_closed_form(q: float, sigma: float, alpha: int) -> float:
    """Closed-form upper bound of Lemma 4 (Wang et al. 2019), integer alpha.

    rho'(alpha) <= 1/(alpha-1) * log(1 + 2 q^2 C(alpha,2)
        min{2(e^{1/sigma^2} - 1), e^{1/sigma^2}}
        + sum_{j=3}^alpha 2 q^j C(alpha,j) e^{j(j-1)/(2 sigma^2)})
    """
    if not 0 <= q < 1:
        raise ValueError("sampling rate must lie in [0, 1)")
    if sigma <= 0:
        raise ValueError("noise multiplier must be positive")
    if not float(alpha).is_integer() or alpha < 2:
        raise ValueError("closed form requires integer alpha >= 2")
    alpha = int(alpha)
    if q == 0:
        return 0.0
    e_term = math.exp(1.0 / sigma**2)
    total = 1.0 + 2.0 * q**2 * special.binom(alpha, 2) * min(2.0 * (e_term - 1.0), e_term)
    for j in range(3, alpha + 1):
        total += 2.0 * q**j * special.binom(alpha, j) * math.exp(j * (j - 1) / (2.0 * sigma**2))
    return math.log(total) / (alpha - 1.0)
