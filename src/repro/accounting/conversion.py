"""Conversion from RDP to approximate (eps, delta)-DP.

Implements Lemma 2 of the paper (Balle, Barthe, Gaboardi, Hsu & Sato 2020):

    eps(alpha) = rho + log((alpha - 1) / alpha) - (log(delta) + log(alpha)) / (alpha - 1)

The final epsilon reported anywhere in the library is the minimum of
eps(alpha) over the order grid, exactly as Theorems 1-3 prescribe ("the
actual eps is numerically calculated by selecting the optimal alpha").
"""

from __future__ import annotations

import math

import numpy as np

from repro.accounting.rdp import DEFAULT_ALPHAS


def rdp_to_dp(alpha: float, rho: float, delta: float) -> float:
    """(alpha, rho)-RDP implies (eps, delta)-DP for this eps (Lemma 2)."""
    if alpha <= 1:
        raise ValueError("Renyi order must exceed 1")
    if not 0 < delta < 1:
        raise ValueError("delta must lie in (0, 1)")
    if rho < 0:
        raise ValueError("rho must be non-negative")
    return (
        rho
        + math.log((alpha - 1.0) / alpha)
        - (math.log(delta) + math.log(alpha)) / (alpha - 1.0)
    )


def rdp_curve_to_dp(
    rhos: np.ndarray, delta: float, alphas: np.ndarray | None = None
) -> tuple[float, float]:
    """Best (eps, delta)-DP over the order grid.

    Args:
        rhos: RDP curve values, aligned with ``alphas``.
        delta: target delta.
        alphas: order grid; defaults to :data:`DEFAULT_ALPHAS`.

    Returns:
        (eps, best_alpha) -- the minimised epsilon and the order attaining it.
        Non-finite curve entries (e.g. orders invalidated by a group
        conversion) are skipped.
    """
    alphas = DEFAULT_ALPHAS if alphas is None else np.asarray(alphas, dtype=np.float64)
    rhos = np.asarray(rhos, dtype=np.float64)
    if rhos.shape != alphas.shape:
        raise ValueError("rhos and alphas must be aligned")
    best_eps = math.inf
    best_alpha = math.nan
    for alpha, rho in zip(alphas, rhos):
        if not np.isfinite(rho) or alpha <= 1:
            continue
        eps = rdp_to_dp(float(alpha), float(rho), delta)
        if eps < best_eps:
            best_eps = eps
            best_alpha = float(alpha)
    if not math.isfinite(best_eps):
        raise ValueError("no finite epsilon on the order grid")
    return best_eps, best_alpha
