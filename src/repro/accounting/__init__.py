"""Differential-privacy accounting for Uldp-FL.

This package is a from-scratch replacement for the Opacus/TF-privacy RDP
accountant plus the paper's group-privacy conversions:

- :mod:`repro.accounting.rdp` -- Renyi DP of the Gaussian mechanism
  (Lemma 3) and RDP composition (Lemma 1).
- :mod:`repro.accounting.subsampled` -- RDP of the Poisson-sub-sampled
  Gaussian mechanism (Lemma 4; numerically tight bounds of Mironov et al.
  2019 for integer and fractional orders).
- :mod:`repro.accounting.conversion` -- RDP -> (eps, delta)-DP conversion
  (Lemma 2, Balle et al. 2020) with optimal-order search.
- :mod:`repro.accounting.group` -- group privacy: the RDP doubling route
  (Lemma 6, Mironov Prop. 11) and the approximate-DP route with the
  binary-search procedure of the paper's footnote 1 (Lemma 5).
- :mod:`repro.accounting.accountant` -- a high-level
  :class:`PrivacyAccountant` used by the trainer, with constructors matching
  Theorems 1-3 of the paper.
"""

from repro.accounting.rdp import (
    DEFAULT_ALPHAS,
    compose_rdp,
    gaussian_rdp,
    gaussian_rdp_curve,
)
from repro.accounting.subsampled import (
    subsampled_gaussian_rdp,
    subsampled_gaussian_rdp_curve,
    subsampled_rdp_closed_form,
)
from repro.accounting.conversion import rdp_to_dp, rdp_curve_to_dp
from repro.accounting.group import (
    group_rdp_curve,
    group_epsilon_via_rdp,
    group_epsilon_via_normal_dp,
)
from repro.accounting.accountant import PrivacyAccountant, RdpEvent, ReleaseEvent
from repro.accounting.calibration import (
    calibrate_noise_multiplier,
    calibrate_sample_rate,
)

__all__ = [
    "calibrate_noise_multiplier",
    "calibrate_sample_rate",
    "DEFAULT_ALPHAS",
    "compose_rdp",
    "gaussian_rdp",
    "gaussian_rdp_curve",
    "subsampled_gaussian_rdp",
    "subsampled_gaussian_rdp_curve",
    "subsampled_rdp_closed_form",
    "rdp_to_dp",
    "rdp_curve_to_dp",
    "group_rdp_curve",
    "group_epsilon_via_rdp",
    "group_epsilon_via_normal_dp",
    "PrivacyAccountant",
    "RdpEvent",
    "ReleaseEvent",
]
