"""Group-privacy conversions: record-level DP to (k, eps, delta)-Group DP.

Two routes, mirroring the paper's Figure 2 pre-experiment:

1. **RDP route** (Lemma 6; Mironov 2017, Prop. 11).  For group size
   k = 2^c, applying the doubling step c times maps an (alpha, rho)-RDP
   guarantee to an (alpha / 2^c, 3^c rho)-RDP guarantee w.r.t. k-record
   neighbours, after which Lemma 2 converts to approximate DP.  The group
   size must be a power of two; callers with other k use the largest power
   of two below k (the paper does the same, reporting a lower bound).

2. **Approximate-DP route** (Lemma 5).  (eps, delta)-DP implies
   (k eps, k e^{(k-1) eps} delta)-GDP for any k.  Fixing the *final* delta
   requires searching the intermediate delta, because the Lemma 2 output
   eps depends on the input delta and the Lemma 5 output delta depends on
   both.  We follow the paper's footnote 1: scan + bisection over the
   intermediate delta until the final delta matches the target within 1e-8.
"""

from __future__ import annotations

import math

import numpy as np

from repro.accounting.conversion import rdp_curve_to_dp
from repro.accounting.rdp import DEFAULT_ALPHAS


def largest_power_of_two_leq(k: int) -> int:
    """Largest power of two that is <= k (k >= 1)."""
    if k < 1:
        raise ValueError("group size must be at least 1")
    return 1 << (k.bit_length() - 1)


def group_rdp_curve(
    rhos: np.ndarray, group_size: int, alphas: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Apply Lemma 6 (RDP doubling) to an RDP curve.

    Args:
        rhos: base record-level RDP curve on ``alphas``.
        group_size: k; must be a power of two (use
            :func:`largest_power_of_two_leq` first otherwise).
        alphas: base order grid.

    Returns:
        (group_alphas, group_rhos): the k-record-neighbour RDP curve.  Each
        base order alpha contributes the point (alpha / k, 3^c rho(alpha))
        where c = log2 k; points with resulting order <= 1 are dropped.
    """
    alphas = DEFAULT_ALPHAS if alphas is None else np.asarray(alphas, dtype=np.float64)
    rhos = np.asarray(rhos, dtype=np.float64)
    if rhos.shape != alphas.shape:
        raise ValueError("rhos and alphas must be aligned")
    if group_size < 1:
        raise ValueError("group size must be at least 1")
    if group_size & (group_size - 1):
        raise ValueError("group size must be a power of two for the RDP route")
    if group_size == 1:
        return alphas.copy(), rhos.copy()

    c = group_size.bit_length() - 1
    group_alphas = alphas / group_size
    group_rhos = (3.0**c) * rhos
    keep = group_alphas > 1.0
    if not np.any(keep):
        raise ValueError(
            "order grid too small for this group size; extend alphas beyond "
            f"{2 * group_size}"
        )
    return group_alphas[keep], group_rhos[keep]


def group_epsilon_via_rdp(
    rhos: np.ndarray,
    group_size: int,
    delta: float,
    alphas: np.ndarray | None = None,
) -> float:
    """Final GDP epsilon at fixed delta using the RDP route (Lemma 6 + 2).

    Non-power-of-two group sizes are rounded *down* to a power of two,
    matching the paper's reporting convention (a lower bound on the true
    epsilon that is already large enough to make the point).
    """
    k = largest_power_of_two_leq(group_size)
    g_alphas, g_rhos = group_rdp_curve(rhos, k, alphas=alphas)
    eps, _ = rdp_curve_to_dp(g_rhos, delta, alphas=g_alphas)
    return eps


def group_dp_from_dp(eps: float, delta: float, group_size: int) -> tuple[float, float]:
    """Lemma 5: (eps, delta)-DP implies (k eps, k e^{(k-1) eps} delta)-GDP."""
    if group_size < 1:
        raise ValueError("group size must be at least 1")
    if eps < 0 or delta < 0:
        raise ValueError("eps and delta must be non-negative")
    k = group_size
    return k * eps, k * math.exp((k - 1) * eps) * delta


def group_epsilon_via_normal_dp(
    rhos: np.ndarray,
    group_size: int,
    delta: float,
    alphas: np.ndarray | None = None,
    tolerance: float = 1e-8,
    scan_points: int = 200,
) -> float:
    """Final GDP epsilon at fixed delta via the approximate-DP route.

    Implements footnote 1 of the paper: choose an intermediate delta_l2,
    convert the RDP curve to (eps_l2, delta_l2)-DP via Lemma 2, push through
    Lemma 5 to get (k eps_l2, delta_l5)-GDP, and search delta_l2 so that
    delta_l5 is as close to the target delta as possible (from below, so the
    reported guarantee is valid).  The map delta_l2 -> delta_l5 need not be
    monotone for large k (the paper notes numerical instability); we scan a
    geometric grid, keep feasible points (delta_l5 <= delta), and refine the
    best feasible/infeasible boundary by bisection.

    Returns the smallest feasible k * eps_l2 found.
    """
    if group_size == 1:
        eps, _ = rdp_curve_to_dp(rhos, delta, alphas=alphas)
        return eps

    k = group_size
    log_delta_target = math.log(delta)

    def rdp_eps_at_log_delta(log_delta_l2: float) -> float:
        """Lemma 2 conversion with log(delta) given directly (no underflow)."""
        alphas_arr = DEFAULT_ALPHAS if alphas is None else np.asarray(alphas)
        best = math.inf
        for alpha, rho in zip(alphas_arr, np.asarray(rhos)):
            if not np.isfinite(rho) or alpha <= 1:
                continue
            eps = (
                rho
                + math.log((alpha - 1.0) / alpha)
                - (log_delta_l2 + math.log(alpha)) / (alpha - 1.0)
            )
            best = min(best, eps)
        return best

    def final_eps_and_log_delta(log_delta_l2: float) -> tuple[float, float]:
        """Lemma 5 in log space: log(delta_l5) = log k + (k-1) eps + log delta_l2."""
        eps_l2 = rdp_eps_at_log_delta(log_delta_l2)
        log_delta_l5 = math.log(k) + (k - 1) * eps_l2 + log_delta_l2
        return k * eps_l2, log_delta_l5

    # The feasible region can sit extremely deep: eps_l2 grows only like
    # sqrt(-log delta_l2), so (k-1) * eps_l2 + log delta_l2 <= log delta
    # needs -log delta_l2 on the order of k^2 * rho.  Scan geometrically to
    # a depth that scales with k^2.
    depth = max(200.0, 10.0 * k * k * max(1.0, float(np.nanmin(rhos[np.isfinite(rhos)]))))
    log_grid = np.linspace(log_delta_target, log_delta_target - depth, scan_points)

    best_eps = math.inf
    best_idx = -1
    results = []
    for i, log_d2 in enumerate(log_grid):
        eps_f, log_delta_f = final_eps_and_log_delta(float(log_d2))
        results.append((eps_f, log_delta_f))
        if log_delta_f <= log_delta_target and eps_f < best_eps:
            best_eps = eps_f
            best_idx = i

    if best_idx == -1:
        raise ValueError(
            "no feasible intermediate delta found; the group-privacy "
            "conversion diverged (group size too large for this RDP curve)"
        )

    # Refine: the best feasible grid point typically neighbours an
    # infeasible one at larger delta_l2 (larger delta_l2 => smaller eps_l2
    # => smaller final eps, but larger final delta).  Bisect the boundary.
    if best_idx > 0 and results[best_idx - 1][1] > log_delta_target:
        lo = float(log_grid[best_idx])      # feasible
        hi = float(log_grid[best_idx - 1])  # infeasible (delta_l5 too big)
        for _ in range(200):
            mid = (lo + hi) / 2.0
            eps_f, log_delta_f = final_eps_and_log_delta(mid)
            if log_delta_f <= log_delta_target:
                lo = mid
                if eps_f < best_eps:
                    best_eps = eps_f
            else:
                hi = mid
            if abs(log_delta_f - log_delta_target) < tolerance:
                break

    return best_eps
