"""Calibration: solve for the mechanism parameter hitting a target epsilon.

The paper fixes sigma = 5.0 and reports the resulting epsilon; a deployment
usually works the other way round -- "we are allowed eps = 2 at delta =
1e-5 over T rounds; how much noise (or how little participation) does that
need?".  These helpers invert the accountant by bisection:

- :func:`calibrate_noise_multiplier` -- smallest sigma achieving the
  target (the Opacus ``get_noise_multiplier`` equivalent), for ULDP-AVG /
  ULDP-NAIVE rounds (optionally sub-sampled, Remark 1).
- :func:`calibrate_sample_rate` -- largest user-level sampling rate q
  achieving the target at a fixed sigma (Algorithm 4 tuning).

Both rely on monotonicity: epsilon decreases in sigma and increases in q.
"""

from __future__ import annotations

import math

from repro.accounting.conversion import rdp_curve_to_dp
from repro.accounting.rdp import gaussian_rdp_curve
from repro.accounting.subsampled import subsampled_gaussian_rdp_curve


def _epsilon(sigma: float, q: float, steps: int, delta: float) -> float:
    if q >= 1.0:
        curve = gaussian_rdp_curve(sigma, steps)
    else:
        curve = subsampled_gaussian_rdp_curve(q, sigma, steps)
    eps, _ = rdp_curve_to_dp(curve, delta)
    return eps


def calibrate_noise_multiplier(
    target_epsilon: float,
    delta: float,
    steps: int,
    sample_rate: float = 1.0,
    sigma_max: float = 1000.0,
    tolerance: float = 1e-3,
) -> float:
    """Smallest noise multiplier sigma with eps(sigma) <= target_epsilon.

    Args:
        target_epsilon: the ULDP budget after ``steps`` rounds.
        delta: target delta.
        steps: number of composed rounds (T).
        sample_rate: user-level sub-sampling rate q (1.0 = no sampling).
        sigma_max: upper bound for the search.
        tolerance: relative precision of the returned sigma.

    Raises:
        ValueError: if even ``sigma_max`` cannot reach the target.
    """
    if target_epsilon <= 0:
        raise ValueError("target epsilon must be positive")
    if steps < 1:
        raise ValueError("steps must be at least 1")
    if not 0 < sample_rate <= 1:
        raise ValueError("sample rate must lie in (0, 1]")
    if _epsilon(sigma_max, sample_rate, steps, delta) > target_epsilon:
        raise ValueError(
            f"target epsilon {target_epsilon} unreachable even at sigma={sigma_max}"
        )
    lo, hi = 1e-2, sigma_max
    while _epsilon(lo, sample_rate, steps, delta) <= target_epsilon and lo > 1e-6:
        lo /= 2.0  # ensure lo is infeasible so the invariant below holds
    # Invariant: eps(lo) > target >= eps(hi).
    while hi / lo > 1.0 + tolerance:
        mid = math.sqrt(lo * hi)
        if _epsilon(mid, sample_rate, steps, delta) <= target_epsilon:
            hi = mid
        else:
            lo = mid
    return hi


def calibrate_sample_rate(
    target_epsilon: float,
    delta: float,
    steps: int,
    noise_multiplier: float,
    tolerance: float = 1e-4,
) -> float:
    """Largest user sampling rate q with eps(q) <= target_epsilon.

    Returns 1.0 when full participation already meets the budget.

    Raises:
        ValueError: if the target is unreachable even as q -> 0 (too many
            steps / too little noise).
    """
    if target_epsilon <= 0:
        raise ValueError("target epsilon must be positive")
    if noise_multiplier <= 0:
        raise ValueError("noise multiplier must be positive")
    if _epsilon(noise_multiplier, 1.0, steps, delta) <= target_epsilon:
        return 1.0
    q_min = 1e-6
    if _epsilon(noise_multiplier, q_min, steps, delta) > target_epsilon:
        raise ValueError(
            f"target epsilon {target_epsilon} unreachable even at q={q_min}"
        )
    lo, hi = q_min, 1.0  # eps(lo) <= target < eps(hi)
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if _epsilon(noise_multiplier, mid, steps, delta) <= target_epsilon:
            lo = mid
        else:
            hi = mid
    return lo
