"""Renyi differential privacy of the Gaussian mechanism.

Implements the building blocks used throughout the paper's analysis:

- Lemma 3: the Gaussian mechanism with noise multiplier sigma (noise std =
  sigma * sensitivity) satisfies (alpha, alpha / (2 sigma^2))-RDP.
- Lemma 1: adaptive composition adds RDP parameters order-wise.

An *RDP curve* here is a numpy array of rho values evaluated on a fixed grid
of orders ``alphas``; all higher-level routines operate on curves so that the
final RDP->DP conversion can pick the optimal order.
"""

from __future__ import annotations

import numpy as np

#: Default grid of Renyi orders.  Matches the spirit of Opacus's default
#: (1 < alpha <= 64) but extends to much larger orders because the group-
#: privacy conversion of Lemma 6 consumes a factor of 2^c in the order:
#: recovering a group-RDP curve up to order 64 for group size 1024 needs
#: base orders up to 65536.
DEFAULT_ALPHAS = np.array(
    [1.25, 1.5, 1.75, 2.0, 2.25, 2.5, 3.0, 3.5, 4.0, 4.5]
    + list(range(5, 64))
    + [64, 80, 96, 128, 160, 192, 256, 320, 384, 512, 640, 768, 1024,
       1536, 2048, 3072, 4096, 6144, 8192, 12288, 16384, 24576, 32768,
       49152, 65536, 98304, 131072],
    dtype=np.float64,
)


def gaussian_rdp(sigma: float, alpha: float) -> float:
    """RDP of the Gaussian mechanism at a single order (Lemma 3).

    Args:
        sigma: noise multiplier (noise std divided by l2-sensitivity).
        alpha: Renyi order, must be > 1.

    Returns:
        rho such that the mechanism is (alpha, rho)-RDP.
    """
    if sigma <= 0:
        raise ValueError("noise multiplier must be positive")
    if alpha <= 1:
        raise ValueError("Renyi order must exceed 1")
    return alpha / (2.0 * sigma**2)


def gaussian_rdp_curve(sigma: float, steps: int = 1, alphas: np.ndarray | None = None) -> np.ndarray:
    """RDP curve of ``steps`` adaptive compositions of the Gaussian mechanism.

    Composition is linear in rho (Lemma 1), so the curve is simply
    ``steps * alpha / (2 sigma^2)`` evaluated on the order grid.
    """
    if steps < 0:
        raise ValueError("steps must be non-negative")
    alphas = DEFAULT_ALPHAS if alphas is None else np.asarray(alphas, dtype=np.float64)
    if np.any(alphas <= 1):
        raise ValueError("all Renyi orders must exceed 1")
    if sigma <= 0:
        raise ValueError("noise multiplier must be positive")
    return steps * alphas / (2.0 * sigma**2)


def compose_rdp(*curves: np.ndarray) -> np.ndarray:
    """Adaptive composition of RDP curves on a shared order grid (Lemma 1)."""
    if not curves:
        raise ValueError("need at least one curve")
    shapes = {c.shape for c in curves}
    if len(shapes) != 1:
        raise ValueError("all curves must share the same order grid")
    return np.sum(curves, axis=0)


def parallel_compose_rdp(*curves: np.ndarray) -> np.ndarray:
    """Parallel composition over disjoint databases: order-wise maximum.

    Used by Theorem 2: silos hold disjoint record sets, so the per-silo
    DP-SGD releases compose in parallel and the joint release satisfies
    (alpha, max_s rho_s)-RDP.
    """
    if not curves:
        raise ValueError("need at least one curve")
    shapes = {c.shape for c in curves}
    if len(shapes) != 1:
        raise ValueError("all curves must share the same order grid")
    return np.max(curves, axis=0)
