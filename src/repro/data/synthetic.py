"""Synthetic stand-ins for the paper's four evaluation datasets.

The environment is offline, so the Kaggle/MNIST/FLamby data cannot be
downloaded; each generator below produces a learnable synthetic task with
the same *shape* (feature count, class structure, silo layout, model size)
as the original.  The FL algorithms, privacy accounting, and protocol code
are agnostic to the data values, so every paper code path is exercised.
See DESIGN.md section 4 for the substitution rationale.

All generators return centred, unit-scale features and a held-out test
split, and accept a seed for exact reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class RawDataset:
    """A centralised dataset before federated allocation."""

    x: np.ndarray
    y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    task: str
    name: str


def synthetic_creditcard(
    n_records: int = 25_000,
    n_test: int = 5_000,
    n_features: int = 30,
    positive_rate: float = 0.2,
    seed: int = 0,
) -> RawDataset:
    """Credit-card-fraud-like tabular data (binary, imbalanced, 30 features).

    Fraud records shift a random subset of feature directions, mimicking the
    PCA-transformed V1..V28 + Amount + Time layout of the Kaggle dataset
    after undersampling.  Classified with the paper's ~4K-parameter MLP.
    """
    rng = np.random.default_rng(seed)
    total = n_records + n_test
    y = (rng.random(total) < positive_rate).astype(np.int64)
    x = rng.standard_normal((total, n_features))
    # Fraud signature: a sparse mean shift plus mild variance inflation.
    direction = rng.standard_normal(n_features)
    direction /= np.linalg.norm(direction)
    informative = rng.choice(n_features, size=n_features // 3, replace=False)
    shift = np.zeros(n_features)
    shift[informative] = 1.6 * direction[informative] / np.abs(direction[informative]).mean()
    x[y == 1] += shift
    x[y == 1] *= 1.15
    return RawDataset(
        x=x[:n_records],
        y=y[:n_records],
        test_x=x[n_records:],
        test_y=y[n_records:],
        task="binary",
        name="creditcard",
    )


def _class_templates(
    n_classes: int, image_size: int, rng: np.random.Generator
) -> np.ndarray:
    """Smooth random per-class image templates (blurred blobs)."""
    templates = rng.standard_normal((n_classes, image_size, image_size))
    # Cheap separable box blur applied twice for smoothness.
    kernel = np.ones(3) / 3.0
    for _ in range(2):
        templates = np.apply_along_axis(
            lambda m: np.convolve(m, kernel, mode="same"), 1, templates
        )
        templates = np.apply_along_axis(
            lambda m: np.convolve(m, kernel, mode="same"), 2, templates
        )
    # Normalise each template to unit std for comparable class difficulty.
    templates /= templates.std(axis=(1, 2), keepdims=True)
    return templates


def synthetic_mnist(
    n_records: int = 6_000,
    n_test: int = 1_000,
    image_size: int = 14,
    n_classes: int = 10,
    noise_std: float = 0.8,
    seed: int = 0,
) -> RawDataset:
    """MNIST-like 10-class images: class template + shift + pixel noise.

    Images have shape (1, image_size, image_size) and are consumed by the
    paper's ~20K-parameter CNN.  ``noise_std`` tunes task difficulty.
    """
    rng = np.random.default_rng(seed)
    templates = _class_templates(n_classes, image_size, rng)
    total = n_records + n_test
    y = rng.integers(0, n_classes, size=total)
    x = np.empty((total, 1, image_size, image_size))
    shifts = rng.integers(-1, 2, size=(total, 2))
    for i in range(total):
        img = np.roll(templates[y[i]], shift=tuple(shifts[i]), axis=(0, 1))
        x[i, 0] = img + noise_std * rng.standard_normal((image_size, image_size))
    return RawDataset(
        x=x[:n_records],
        y=y[:n_records],
        test_x=x[n_records:],
        test_y=y[n_records:],
        task="multiclass",
        name="mnist",
    )


#: FLamby-like silo sizes (approximate; the real benchmark fixes these).
HEARTDISEASE_SILO_SIZES = (303, 261, 46, 130)
TCGABRCA_SILO_SIZES = (248, 156, 164, 129, 129, 40)


def synthetic_heartdisease(
    silo_sizes: tuple[int, ...] = HEARTDISEASE_SILO_SIZES,
    n_test: int = 185,
    n_features: int = 13,
    seed: int = 0,
) -> tuple[list[np.ndarray], list[np.ndarray], RawDataset]:
    """HeartDisease-like pre-siloed binary data (4 hospitals, 13 features).

    Each silo gets a small distribution shift (different feature means), as
    in the multi-centre original.  Labels follow a shared logistic model.

    Returns:
        (per-silo x list, per-silo y list, RawDataset whose x/y are the
        concatenation -- convenient for allocation utilities).
    """
    rng = np.random.default_rng(seed)
    beta = rng.standard_normal(n_features)
    beta /= np.linalg.norm(beta) / 2.5

    xs, ys = [], []
    for size in silo_sizes:
        centre_shift = 0.4 * rng.standard_normal(n_features)
        x = rng.standard_normal((size, n_features)) + centre_shift
        logits = x @ beta
        y = (rng.random(size) < 1.0 / (1.0 + np.exp(-logits))).astype(np.int64)
        xs.append(x)
        ys.append(y)

    test_x = rng.standard_normal((n_test, n_features))
    test_logits = test_x @ beta
    test_y = (rng.random(n_test) < 1.0 / (1.0 + np.exp(-test_logits))).astype(np.int64)

    raw = RawDataset(
        x=np.concatenate(xs),
        y=np.concatenate(ys),
        test_x=test_x,
        test_y=test_y,
        task="binary",
        name="heartdisease",
    )
    return xs, ys, raw


def synthetic_tcgabrca(
    silo_sizes: tuple[int, ...] = TCGABRCA_SILO_SIZES,
    n_test: int = 222,
    n_features: int = 39,
    censoring_rate: float = 0.4,
    seed: int = 0,
) -> tuple[list[np.ndarray], list[np.ndarray], RawDataset]:
    """TcgaBrca-like pre-siloed survival data (6 silos, Cox model).

    Event times are exponential with rate exp(x . beta) (a proportional-
    hazards model, so the linear Cox model is well-specified); a fraction of
    records is independently right-censored.  Targets are (time, event)
    pairs, consumed by :class:`repro.nn.losses.CoxPHLoss` and evaluated with
    the C-index.
    """
    rng = np.random.default_rng(seed)
    beta = rng.standard_normal(n_features)
    beta /= np.linalg.norm(beta) / 1.5

    def sample(n: int, centre_shift: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        x = rng.standard_normal((n, n_features)) + centre_shift
        risk = np.clip(x @ beta, -8, 8)
        times = rng.exponential(np.exp(-risk))
        events = (rng.random(n) >= censoring_rate).astype(np.float64)
        # Censored records observe a uniformly earlier time.
        censored = events == 0
        times[censored] *= rng.random(int(censored.sum()))
        y = np.stack([times, events], axis=1)
        return x, y

    xs, ys = [], []
    for size in silo_sizes:
        x, y = sample(size, 0.3 * rng.standard_normal(n_features))
        xs.append(x)
        ys.append(y)
    test_x, test_y = sample(n_test, np.zeros(n_features))

    raw = RawDataset(
        x=np.concatenate(xs),
        y=np.concatenate(ys),
        test_x=test_x,
        test_y=test_y,
        task="survival",
        name="tcgabrca",
    )
    return xs, ys, raw
