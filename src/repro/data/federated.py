"""Federated dataset containers.

A :class:`FederatedDataset` holds per-silo training data where every record
is tagged with a user id -- the defining structure of the paper's setting
(one user's records may appear in several silos).  It exposes the views the
algorithms need:

- per-silo data (DEFAULT/FedAVG, ULDP-NAIVE, DP-SGD in ULDP-GROUP),
- per-(silo, user) data (the per-user inner loop of ULDP-AVG/SGD),
- the user-count histogram ``n[s, u]`` (the enhanced weighting strategy and
  Protocol 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class SiloData:
    """Training records held by one silo.

    ``x`` has shape (n, ...) and ``y`` shape (n,) or (n, k); ``user_ids``
    maps each record to the global user id owning it.
    """

    x: np.ndarray
    y: np.ndarray
    user_ids: np.ndarray

    def __post_init__(self):
        self.user_ids = np.asarray(self.user_ids, dtype=np.int64)
        if len(self.x) != len(self.y) or len(self.x) != len(self.user_ids):
            raise ValueError("x, y, user_ids must have equal length")

    @property
    def n_records(self) -> int:
        return len(self.x)

    def records_of_user(self, user: int) -> tuple[np.ndarray, np.ndarray]:
        mask = self.user_ids == user
        return self.x[mask], self.y[mask]

    def users_present(self) -> np.ndarray:
        return np.unique(self.user_ids)


@dataclass
class FederatedDataset:
    """The cross-silo database D spanning all silos, plus held-out test data.

    Attributes:
        silos: per-silo training data.
        n_users: size of the global user set U (user ids are 0..n_users-1).
        test_x / test_y: centralised held-out evaluation data.
        task: ``"multiclass"``, ``"binary"``, or ``"survival"`` -- selects
            the loss and utility metric in the trainer.
        name: human-readable dataset label.
    """

    silos: list[SiloData]
    n_users: int
    test_x: np.ndarray
    test_y: np.ndarray
    task: str = "multiclass"
    name: str = "dataset"
    _histogram: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self):
        valid_tasks = {"multiclass", "binary", "survival"}
        if self.task not in valid_tasks:
            raise ValueError(f"task must be one of {sorted(valid_tasks)}")
        if self.n_users < 1:
            raise ValueError("need at least one user")
        for silo in self.silos:
            if silo.n_records and silo.user_ids.max() >= self.n_users:
                raise ValueError("user id out of range")

    @property
    def n_silos(self) -> int:
        return len(self.silos)

    @property
    def n_records(self) -> int:
        return sum(s.n_records for s in self.silos)

    def histogram(self) -> np.ndarray:
        """n[s, u]: number of records of user u held by silo s (cached)."""
        if self._histogram is None:
            hist = np.zeros((self.n_silos, self.n_users), dtype=np.int64)
            for s, silo in enumerate(self.silos):
                ids, counts = np.unique(silo.user_ids, return_counts=True)
                hist[s, ids] = counts
            self._histogram = hist
        return self._histogram

    def user_totals(self) -> np.ndarray:
        """N_u: total records of each user across all silos."""
        return self.histogram().sum(axis=0)

    def mean_records_per_user(self) -> float:
        """The paper's n-bar: average records per user over the whole database."""
        return self.n_records / self.n_users

    def apply_flags(self, flags: list[np.ndarray]) -> "FederatedDataset":
        """Filter records by boolean flags (the B matrix of ULDP-GROUP-k).

        Args:
            flags: one boolean array per silo, aligned with that silo's
                records; True keeps the record.

        Returns:
            A new dataset sharing the test split.
        """
        if len(flags) != self.n_silos:
            raise ValueError("need one flag array per silo")
        new_silos = []
        for silo, flag in zip(self.silos, flags):
            flag = np.asarray(flag, dtype=bool)
            if len(flag) != silo.n_records:
                raise ValueError("flag length must match silo record count")
            new_silos.append(SiloData(silo.x[flag], silo.y[flag], silo.user_ids[flag]))
        return FederatedDataset(
            silos=new_silos,
            n_users=self.n_users,
            test_x=self.test_x,
            test_y=self.test_y,
            task=self.task,
            name=self.name,
        )

    def summary(self) -> str:
        hist = self.histogram()
        per_silo = ", ".join(str(s.n_records) for s in self.silos)
        return (
            f"{self.name}: |S|={self.n_silos} |U|={self.n_users} "
            f"records={self.n_records} (per silo: {per_silo}) "
            f"n-bar={self.mean_records_per_user():.1f} "
            f"max N_u={int(hist.sum(axis=0).max())}"
        )
