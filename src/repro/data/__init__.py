"""Datasets and federated record allocation.

Public entry points are the ``build_*_benchmark`` functions, which combine a
synthetic dataset generator (:mod:`repro.data.synthetic`) with a record
allocation scheme (:mod:`repro.data.allocation`) into a
:class:`repro.data.federated.FederatedDataset` matching one of the paper's
evaluation settings.
"""

from __future__ import annotations

import numpy as np

from repro.data.allocation import (
    allocate_noniid_by_label,
    allocate_presiloed_uniform,
    allocate_presiloed_zipf,
    allocate_uniform,
    allocate_zipf,
    enforce_min_records_per_pair,
    zipf_weights,
)
from repro.data.federated import FederatedDataset, SiloData
from repro.data.synthetic import (
    HEARTDISEASE_SILO_SIZES,
    TCGABRCA_SILO_SIZES,
    RawDataset,
    synthetic_creditcard,
    synthetic_heartdisease,
    synthetic_mnist,
    synthetic_tcgabrca,
)

__all__ = [
    "FederatedDataset",
    "SiloData",
    "RawDataset",
    "allocate_uniform",
    "allocate_zipf",
    "allocate_presiloed_uniform",
    "allocate_presiloed_zipf",
    "allocate_noniid_by_label",
    "enforce_min_records_per_pair",
    "zipf_weights",
    "synthetic_creditcard",
    "synthetic_heartdisease",
    "synthetic_mnist",
    "synthetic_tcgabrca",
    "HEARTDISEASE_SILO_SIZES",
    "TCGABRCA_SILO_SIZES",
    "build_creditcard_benchmark",
    "build_mnist_benchmark",
    "build_heartdisease_benchmark",
    "build_tcgabrca_benchmark",
    "federate_free",
    "federate_presiloed",
]


def federate_free(
    raw: RawDataset,
    n_users: int,
    n_silos: int,
    distribution: str,
    seed: int,
    noniid_labels_per_user: int | None = None,
) -> FederatedDataset:
    """Allocate a free (not pre-siloed) dataset to users and silos.

    Args:
        raw: centralised dataset.
        distribution: ``"uniform"`` or ``"zipf"`` (Section 5.1).
        noniid_labels_per_user: if set, use the user-level non-iid label
            allocation (each user holds at most this many labels).
    """
    rng = np.random.default_rng(seed)
    n = len(raw.x)
    if noniid_labels_per_user is not None:
        users, silos = allocate_noniid_by_label(
            raw.y, n_users, n_silos, rng,
            labels_per_user=noniid_labels_per_user,
            silo_distribution=distribution,
        )
    elif distribution == "uniform":
        users, silos = allocate_uniform(n, n_users, n_silos, rng)
    elif distribution == "zipf":
        users, silos = allocate_zipf(n, n_users, n_silos, rng)
    else:
        raise ValueError(f"unknown distribution: {distribution!r}")

    silo_data = []
    for s in range(n_silos):
        mask = silos == s
        silo_data.append(SiloData(raw.x[mask], raw.y[mask], users[mask]))
    return FederatedDataset(
        silos=silo_data,
        n_users=n_users,
        test_x=raw.test_x,
        test_y=raw.test_y,
        task=raw.task,
        name=raw.name,
    )


def federate_presiloed(
    xs: list[np.ndarray],
    ys: list[np.ndarray],
    raw: RawDataset,
    n_users: int,
    distribution: str,
    seed: int,
    min_records_per_pair: int = 1,
) -> FederatedDataset:
    """Allocate users over a pre-siloed dataset (HeartDisease, TcgaBrca)."""
    rng = np.random.default_rng(seed)
    sizes = [len(x) for x in xs]
    if distribution == "uniform":
        user_lists = allocate_presiloed_uniform(sizes, n_users, rng)
    elif distribution == "zipf":
        user_lists = allocate_presiloed_zipf(sizes, n_users, rng)
    else:
        raise ValueError(f"unknown distribution: {distribution!r}")

    if min_records_per_pair > 1:
        flat_users = np.concatenate(user_lists)
        flat_silos = np.concatenate(
            [np.full(size, s, dtype=np.int64) for s, size in enumerate(sizes)]
        )
        flat_users = enforce_min_records_per_pair(
            flat_users, flat_silos, min_records_per_pair, rng
        )
        user_lists, pos = [], 0
        for size in sizes:
            user_lists.append(flat_users[pos : pos + size])
            pos += size

    silo_data = [SiloData(x, y, u) for x, y, u in zip(xs, ys, user_lists)]
    return FederatedDataset(
        silos=silo_data,
        n_users=n_users,
        test_x=raw.test_x,
        test_y=raw.test_y,
        task=raw.task,
        name=raw.name,
    )


def build_creditcard_benchmark(
    n_users: int = 100,
    n_silos: int = 5,
    distribution: str = "uniform",
    n_records: int = 25_000,
    n_test: int = 5_000,
    seed: int = 0,
) -> FederatedDataset:
    """The Fig. 4 setting: Creditcard-like data over ``n_silos`` silos."""
    raw = synthetic_creditcard(n_records=n_records, n_test=n_test, seed=seed)
    return federate_free(raw, n_users, n_silos, distribution, seed + 1)


def build_mnist_benchmark(
    n_users: int = 100,
    n_silos: int = 5,
    distribution: str = "uniform",
    non_iid: bool = False,
    n_records: int = 6_000,
    n_test: int = 1_000,
    seed: int = 0,
) -> FederatedDataset:
    """The Fig. 5 setting: MNIST-like data; ``non_iid`` caps users at 2 labels."""
    raw = synthetic_mnist(n_records=n_records, n_test=n_test, seed=seed)
    return federate_free(
        raw, n_users, n_silos, distribution, seed + 1,
        noniid_labels_per_user=2 if non_iid else None,
    )


def build_heartdisease_benchmark(
    n_users: int = 50,
    distribution: str = "uniform",
    silo_sizes: tuple[int, ...] = HEARTDISEASE_SILO_SIZES,
    seed: int = 0,
) -> FederatedDataset:
    """The Fig. 6 setting: 4 fixed hospital silos, logistic model."""
    xs, ys, raw = synthetic_heartdisease(silo_sizes=silo_sizes, seed=seed)
    return federate_presiloed(xs, ys, raw, n_users, distribution, seed + 1)


def build_tcgabrca_benchmark(
    n_users: int = 50,
    distribution: str = "uniform",
    silo_sizes: tuple[int, ...] = TCGABRCA_SILO_SIZES,
    seed: int = 0,
) -> FederatedDataset:
    """The Fig. 7 setting: 6 fixed silos, Cox loss, >= 2 records per pair."""
    xs, ys, raw = synthetic_tcgabrca(silo_sizes=silo_sizes, seed=seed)
    return federate_presiloed(
        xs, ys, raw, n_users, distribution, seed + 1, min_records_per_pair=2
    )
