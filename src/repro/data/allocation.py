"""Record allocation: linking records to users and silos (Section 5.1).

The paper evaluates two allocation families:

**Free allocation** (Creditcard, MNIST -- records are not pre-assigned to
silos):

- ``uniform``: every record draws its user and its silo independently and
  uniformly.
- ``zipf``: the records-per-user counts follow a (bounded) Zipf law with
  exponent ``alpha_user`` (paper: 0.5); each user then spreads their records
  over silos by a second Zipf law with exponent ``alpha_silo`` (paper: 2.0)
  over a user-specific random silo order.

**Pre-siloed allocation** (HeartDisease, TcgaBrca -- silo sizes are fixed by
the benchmark):

- ``uniform``: each record draws its user uniformly, silos untouched.
- ``zipf``: per-user record counts follow the Zipf law; each user sends 80 %
  of their records to a randomly chosen primary silo and the rest uniformly
  to the others (fitted to the fixed silo capacities).

``zipf_weights`` uses bounded ranks (weight of rank r is r^-alpha over the
n_users ranks), since a Zipf law with exponent <= 1 is not normalisable on
infinite support.

A post-processing helper enforces the TcgaBrca constraint that every
(user, silo) pair present holds at least ``min_records`` records (the Cox
loss needs >= 2 records).
"""

from __future__ import annotations

import numpy as np


def zipf_weights(n: int, alpha: float) -> np.ndarray:
    """Normalised bounded-Zipf weights: w_r proportional to r^-alpha.

    Ranks run 1..n (weight of rank r is ``r ** -alpha`` before
    normalisation), so the first rank carries the largest weight.
    """
    if n < 1:
        raise ValueError("need at least one rank")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks**-alpha
    return w / w.sum()


def sharded_zipf_counts(
    n_records: int,
    n_users: int,
    rng: np.random.Generator,
    alpha: float = 0.5,
    shard_size: int = 1 << 18,
):
    """Per-user Zipf record counts, generated one shard at a time.

    A generator yielding ``(start, counts)`` pairs where ``counts`` covers
    users ``start .. start + len(counts) - 1``.  By the splitting property
    of the multinomial this two-stage draw (shard totals first, within-shard
    counts second) has exactly the distribution of
    ``rng.multinomial(n_records, zipf_weights(n_users, alpha))`` while only
    ever materialising one shard of weights -- the building block of the
    million-user populations in :mod:`repro.sim.population` (user id plays
    the role of the Zipf rank; shuffle externally if needed).
    """
    if n_records < 0:
        raise ValueError("record count must be non-negative")
    if n_users < 1:
        raise ValueError("need at least one user")
    if shard_size < 1:
        raise ValueError("shard size must be positive")
    starts = list(range(0, n_users, shard_size))
    # Pass 1: un-normalised Zipf mass per shard (streaming, O(shard) memory).
    masses = np.empty(len(starts), dtype=np.float64)
    for i, start in enumerate(starts):
        stop = min(start + shard_size, n_users)
        ranks = np.arange(start + 1, stop + 1, dtype=np.float64)
        masses[i] = (ranks**-alpha).sum()
    shard_totals = rng.multinomial(n_records, masses / masses.sum())
    # Pass 2: within-shard multinomials conditioned on the shard totals.
    for start, total in zip(starts, shard_totals):
        stop = min(start + shard_size, n_users)
        ranks = np.arange(start + 1, stop + 1, dtype=np.float64)
        w = ranks**-alpha
        yield start, rng.multinomial(int(total), w / w.sum()).astype(np.int64)


def allocate_uniform(
    n_records: int, n_users: int, n_silos: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Free uniform allocation: independent uniform user and silo draws.

    Returns:
        (user_ids, silo_ids), each of shape (n_records,).
    """
    users = rng.integers(0, n_users, size=n_records)
    silos = rng.integers(0, n_silos, size=n_records)
    return users, silos


def allocate_zipf(
    n_records: int,
    n_users: int,
    n_silos: int,
    rng: np.random.Generator,
    alpha_user: float = 0.5,
    alpha_silo: float = 2.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Free Zipf allocation (paper defaults alpha_user=0.5, alpha_silo=2.0).

    Users are randomly ranked; the user's silo preference order is an
    independent random permutation per user (the "concentration in the silos
    selected by each user" is higher than the user-count concentration).
    """
    user_rank = rng.permutation(n_users)
    per_user = rng.multinomial(n_records, zipf_weights(n_users, alpha_user))

    users = np.empty(n_records, dtype=np.int64)
    silos = np.empty(n_records, dtype=np.int64)
    silo_w = zipf_weights(n_silos, alpha_silo)
    pos = 0
    for rank, count in enumerate(per_user):
        if count == 0:
            continue
        user = user_rank[rank]
        order = rng.permutation(n_silos)
        per_silo = rng.multinomial(count, silo_w)
        for silo_rank, silo_count in enumerate(per_silo):
            users[pos : pos + silo_count] = user
            silos[pos : pos + silo_count] = order[silo_rank]
            pos += silo_count
    # Shuffle so record order carries no allocation signal.
    perm = rng.permutation(n_records)
    return users[perm], silos[perm]


def allocate_presiloed_uniform(
    silo_sizes: list[int], n_users: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Pre-siloed uniform: per-silo user-id arrays, users drawn uniformly."""
    return [rng.integers(0, n_users, size=size) for size in silo_sizes]


def allocate_presiloed_zipf(
    silo_sizes: list[int],
    n_users: int,
    rng: np.random.Generator,
    alpha_user: float = 0.5,
    primary_fraction: float = 0.8,
) -> list[np.ndarray]:
    """Pre-siloed Zipf: Zipf user counts, 80 % to a random primary silo.

    Desired per-(user, silo) counts are fitted to the fixed silo capacities
    by sampling each silo's records from the users' remaining desired counts
    (falling back to uniform once desires are exhausted), so realised counts
    approximate the target distribution while exactly matching silo sizes.
    """
    if not 0 < primary_fraction <= 1:
        raise ValueError("primary_fraction must lie in (0, 1]")
    n_silos = len(silo_sizes)
    total = int(sum(silo_sizes))
    user_rank = rng.permutation(n_users)
    per_user = rng.multinomial(total, zipf_weights(n_users, alpha_user))

    desired = np.zeros((n_users, n_silos), dtype=np.float64)
    for rank, count in enumerate(per_user):
        user = user_rank[rank]
        primary = rng.integers(0, n_silos)
        desired[user, primary] += primary_fraction * count
        if n_silos > 1:
            others = [s for s in range(n_silos) if s != primary]
            desired[user, others] += (1 - primary_fraction) * count / (n_silos - 1)

    out = []
    for s, size in enumerate(silo_sizes):
        weights = desired[:, s].copy()
        if weights.sum() <= 0:
            weights = np.ones(n_users)
        assignments = np.empty(size, dtype=np.int64)
        for i in range(size):
            p = weights / weights.sum()
            user = rng.choice(n_users, p=p)
            assignments[i] = user
            weights[user] = max(weights[user] - 1.0, 0.0)
            if weights.sum() <= 0:
                weights = np.ones(n_users)
        out.append(assignments)
    return out


def allocate_noniid_by_label(
    labels: np.ndarray,
    n_users: int,
    n_silos: int,
    rng: np.random.Generator,
    labels_per_user: int = 2,
    silo_distribution: str = "uniform",
    alpha_silo: float = 2.0,
) -> tuple[np.ndarray, np.ndarray]:
    """User-level non-iid allocation: each user sees at most k labels.

    Used for the MNIST non-iid experiments (Fig. 5c/5f).  Every user is
    assigned ``labels_per_user`` label values; each record is routed to a
    uniformly random user owning its label.  Silos are then drawn uniformly
    or by the per-user Zipf preference, as in :func:`allocate_zipf`.
    """
    labels = np.asarray(labels).ravel()
    classes = np.unique(labels)
    n_records = len(labels)

    user_labels = [rng.choice(classes, size=min(labels_per_user, len(classes)), replace=False)
                   for _ in range(n_users)]
    label_to_users: dict[int, list[int]] = {int(c): [] for c in classes}
    for u, ls in enumerate(user_labels):
        for l in ls:
            label_to_users[int(l)].append(u)
    # Every label needs at least one owner; patch gaps deterministically.
    for c, owners in label_to_users.items():
        if not owners:
            owners.append(int(rng.integers(0, n_users)))

    users = np.array(
        [label_to_users[int(l)][rng.integers(0, len(label_to_users[int(l)]))] for l in labels],
        dtype=np.int64,
    )

    if silo_distribution == "uniform":
        silos = rng.integers(0, n_silos, size=n_records)
    elif silo_distribution == "zipf":
        silo_w = zipf_weights(n_silos, alpha_silo)
        orders = {u: rng.permutation(n_silos) for u in range(n_users)}
        ranks = rng.choice(n_silos, size=n_records, p=silo_w)
        silos = np.array([orders[int(u)][r] for u, r in zip(users, ranks)], dtype=np.int64)
    else:
        raise ValueError(f"unknown silo distribution: {silo_distribution!r}")
    return users, silos


def enforce_min_records_per_pair(
    user_ids: np.ndarray, silo_ids: np.ndarray, min_records: int, rng: np.random.Generator
) -> np.ndarray:
    """Reassign users so every present (silo, user) pair has >= min_records.

    Needed for TcgaBrca: the Cox loss requires at least two records per
    training unit.  Records in under-populated pairs are handed to the
    already-largest user within the same silo (silo membership is fixed).
    Returns the corrected user-id array.
    """
    if min_records < 1:
        raise ValueError("min_records must be at least 1")
    user_ids = np.array(user_ids, dtype=np.int64, copy=True)
    silo_ids = np.asarray(silo_ids, dtype=np.int64)
    for s in np.unique(silo_ids):
        in_silo = np.where(silo_ids == s)[0]
        while True:
            ids, counts = np.unique(user_ids[in_silo], return_counts=True)
            small = ids[counts < min_records]
            if len(small) == 0 or len(ids) == 1:
                break
            target = ids[np.argmax(counts)]
            if target in small:
                # Everyone is under the minimum; merge all into one user.
                user_ids[in_silo] = target
                break
            donor = small[0]
            user_ids[in_silo[user_ids[in_silo] == donor]] = target
    return user_ids
