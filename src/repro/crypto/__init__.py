"""Cryptographic substrate for the Uldp-FL private weighting protocol.

Everything here is implemented from scratch on top of the Python standard
library (``secrets``, ``hashlib``, ``math``):

- :mod:`repro.crypto.primes` -- Miller-Rabin probabilistic primality testing
  and random prime generation.
- :mod:`repro.crypto.paillier` -- the Paillier additively homomorphic
  cryptosystem (keygen / encrypt / decrypt / ciphertext arithmetic).
- :mod:`repro.crypto.dh` -- finite-field Diffie-Hellman key agreement with a
  SHA-256 key-derivation function.
- :mod:`repro.crypto.masking` -- PRG-expanded pairwise additive masks over a
  finite field, the core of secure aggregation (Bonawitz et al.).
- :mod:`repro.crypto.blinding` -- multiplicative blinding over F_n
  (Damgard et al.) used to hide user histograms from the server.
- :mod:`repro.crypto.encoding` -- fixed-point encoding of real vectors into
  F_n (Algorithm 5 of the paper).
- :mod:`repro.crypto.secagg` -- Bonawitz-style pairwise-mask secure
  aggregation with dropout recovery (the ``crypto_backend="masked"`` path).

The default key sizes used in tests and benchmarks are intentionally small
(512-bit Paillier modulus, 512-bit DH group) so the full protocol runs in
seconds; all sizes are parameters and the paper's 3072-bit setting is
supported.
"""

from repro.crypto.primes import is_probable_prime, random_prime
from repro.crypto.paillier import (
    PaillierCiphertext,
    PaillierCrt,
    PaillierKeypair,
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_paillier_keypair,
)
from repro.crypto.dh import DHGroup, DHKeypair, derive_shared_key
from repro.crypto.masking import PairwiseMasker, prg_field_elements
from repro.crypto.blinding import BlindingFactory
from repro.crypto.encoding import decode_scalar, decode_vector, encode_scalar, encode_vector
from repro.crypto.fastexp import FixedBaseExp, choose_window
from repro.crypto.pool import RandomizerPool
from repro.crypto.secagg import (
    MaskedAggregationProtocol,
    MaskedServerView,
    MaskedSilo,
    derive_round_key,
)

__all__ = [
    "is_probable_prime",
    "random_prime",
    "PaillierCiphertext",
    "PaillierCrt",
    "PaillierKeypair",
    "PaillierPrivateKey",
    "PaillierPublicKey",
    "generate_paillier_keypair",
    "DHGroup",
    "DHKeypair",
    "derive_shared_key",
    "PairwiseMasker",
    "prg_field_elements",
    "BlindingFactory",
    "FixedBaseExp",
    "choose_window",
    "RandomizerPool",
    "MaskedAggregationProtocol",
    "MaskedServerView",
    "MaskedSilo",
    "derive_round_key",
    "encode_scalar",
    "encode_vector",
    "decode_scalar",
    "decode_vector",
]
