"""Pairwise-mask secure aggregation with dropout recovery (Bonawitz-style).

This is the ``crypto_backend="masked"`` alternative to Protocol 1's Paillier
path.  Instead of encrypting every coordinate under an additively homomorphic
cryptosystem, each silo adds a *pairwise additive mask* to its fixed-point
field vector:

- **Setup** (once): every pair of silos runs Diffie-Hellman and derives a
  long-term pair key (KDF context ``"masked-agg"``, independent of Protocol
  1's ``"secure-agg"`` keys).
- **Per round**: each pair derives a fresh *round key* from the pair key and
  the round number, expands it through :func:`~repro.crypto.masking.
  prg_field_elements`, and silo ``i`` adds the stream for every peer
  ``j > i`` and subtracts it for every ``j < i`` (via
  :class:`~repro.crypto.masking.PairwiseMasker`).  Summed over the full
  roster the masks cancel exactly in F_m, so the server learns only the sum.
- **Dropout recovery**: masks are laid over the *full* roster, so a dropped
  silo leaves unmatched streams in the survivors' sum.  Each survivor
  reveals its round keys shared with the dropped silos; the server re-expands
  those streams and subtracts them, recovering exactly the sum over
  survivors.  Because the revealed key is the per-round derivation -- not
  the long-term pair key -- the reveal exposes masks of this round only.

The field is ``F_{2^mask_bits}`` with the same fixed-point encoding as the
Paillier path (:mod:`repro.crypto.encoding`): silo ``s`` submits

    ``sum_u Encode(delta_su) * (n_su * C_LCM / N_u) + Encode(z_s) * C_LCM``

per coordinate, so the decoded aggregate ``(signed / C_LCM) * precision`` is
the *identical integer arithmetic* Protocol 1 decrypts -- the two backends
agree bit for bit under full participation (enforced by
``tests/protocol/test_backend_equivalence.py``).

Security model caveat (documented in ``docs/protocol_performance.md``): this
is the semi-honest single-mask scheme.  Real Bonawitz et al. adds per-silo
self-masks with Shamir-shared seeds so a server cannot learn a silo's vector
by falsely reporting it dropped; here the reveal is scoped to one round by
the per-round key derivation, but a lying server is out of the threat model.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

import numpy as np

from repro.crypto.dh import DHGroup, DHKeypair, derive_shared_key
from repro.crypto.encoding import (
    DEFAULT_PRECISION,
    check_magnitude_budget,
    decode_vector,
    encode_vector,
    lcm_up_to,
)
from repro.crypto.masking import PairwiseMasker, prg_field_elements
from repro.obs.metrics import get_registry

#: KDF context for the long-term pair keys (distinct from Protocol 1's
#: ``"secure-agg"`` so the two backends never share key material).
PAIR_KEY_CONTEXT = "masked-agg"

#: PRG domain-separation label for the per-round delta masks.  The *key*
#: varies per round (see :func:`derive_round_key`), so the label itself can
#: stay constant -- what matters is that a revealed round key opens exactly
#: this one stream.
MASK_STREAM_CONTEXT = "masked-delta"


def derive_round_key(pair_key: bytes, round_no: int) -> bytes:
    """Per-round mask key for one silo pair.

    A one-way derivation from the long-term pair key and the round number:
    revealing it (dropout recovery) lets the server remove this round's
    unmatched masks but says nothing about any other round's masks or the
    pair key itself.
    """
    if round_no < 0:
        raise ValueError("round number must be non-negative")
    return hashlib.sha256(
        b"uldp-fl|masked-round|" + round_no.to_bytes(8, "big") + b"|" + pair_key
    ).digest()


def weight_numerators(
    round_weights: np.ndarray, histogram: np.ndarray, c_lcm: int
) -> np.ndarray:
    """Integer numerators ``round(w[s,u] * C_LCM)`` -- exact where possible.

    When ``round_weights[s, u]`` is the proportional weight
    ``n_su / N_u`` (bit-identical to the float
    :func:`~repro.core.weighting.proportional_weights` computes, which
    participation masking preserves by zeroing whole rows), the numerator
    is formed as the exact integer ``n_su * (C_LCM // N_u)`` -- the same
    integer Protocol 1 encrypts, which is what makes the masked and
    Paillier backends agree bit for bit.  Renormalised weights
    (``renorm="survivors"``/``"carryover"`` gains) fall back to rounding,
    with error at most ``1/(2*C_LCM)`` per unit weight.
    """
    hist = np.asarray(histogram)
    weights = np.asarray(round_weights, dtype=np.float64)
    if weights.shape != hist.shape:
        raise ValueError("round_weights and histogram shapes differ")
    totals = hist.sum(axis=0)
    numerators = np.zeros(weights.shape, dtype=object)
    for s in range(weights.shape[0]):
        for u in range(weights.shape[1]):
            w = weights[s, u]
            if w == 0.0:
                continue
            n_u = int(totals[u])
            if n_u > 0 and w == float(hist[s, u]) / float(n_u):
                numerators[s, u] = int(hist[s, u]) * (c_lcm // n_u)
            else:
                numerators[s, u] = int(round(w * c_lcm))
    return numerators


def encode_weighted_payload(
    contributions: dict[int, np.ndarray],
    numerators: dict[int, int],
    noise: np.ndarray,
    precision: float,
    c_lcm: int,
    modulus: int,
) -> list[int]:
    """One silo's plaintext field vector (before masking).

    Per coordinate: ``sum_u Encode(delta_su) * num_u + Encode(z_s) * C_LCM``
    in F_modulus -- the same integer the Paillier path accumulates inside
    the ciphertext sum, so both backends decode to the identical float.
    """
    total = [e * c_lcm % modulus for e in encode_vector(noise, precision, modulus)]
    for user, delta in contributions.items():
        num = numerators.get(user, 0)
        if num == 0:
            continue
        encoded = encode_vector(delta, precision, modulus)
        for k in range(len(total)):
            total[k] = (total[k] + encoded[k] * num) % modulus
    return total


class MaskedSilo:
    """One silo's role: DH key agreement plus per-round mask application."""

    def __init__(self, silo_id: int, group: DHGroup, rng: random.Random | None = None):
        self.silo_id = silo_id
        self.group = group
        self.keypair: DHKeypair = group.keypair(rng=rng)
        self.pair_keys: dict[int, bytes] = {}

    def dh_public(self) -> int:
        return self.keypair.public

    def receive_dh_publics(self, publics: dict[int, int]) -> None:
        """Derive a long-term pair key with every peer (setup step)."""
        for peer, public in publics.items():
            if peer == self.silo_id:
                continue
            secret = self.keypair.shared_secret(public)
            self.pair_keys[peer] = derive_shared_key(secret, PAIR_KEY_CONTEXT)

    def round_keys(self, round_no: int) -> dict[int, bytes]:
        """Fresh per-round mask keys for every peer."""
        return {
            peer: derive_round_key(key, round_no)
            for peer, key in self.pair_keys.items()
        }

    def masked_payload(
        self, values: list[int], round_no: int, modulus: int
    ) -> list[int]:
        """Add the net pairwise mask for this round to a field vector."""
        masker = PairwiseMasker(self.silo_id, self.round_keys(round_no), modulus)
        mask = masker.mask_vector(len(values), context=MASK_STREAM_CONTEXT)
        return [(v + m) % modulus for v, m in zip(values, mask)]

    def reveal_round_keys(self, dropped: list[int], round_no: int) -> dict[int, bytes]:
        """Dropout recovery: hand the server this round's keys with ``dropped``.

        Only the one-way per-round derivation leaves the silo; the long-term
        pair keys (and with them every other round's masks) stay private.
        """
        return {
            peer: derive_round_key(self.pair_keys[peer], round_no)
            for peer in dropped
            if peer in self.pair_keys
        }


@dataclass
class MaskedServerView:
    """Everything the server observes -- the privacy tests read this."""

    dh_publics: dict[int, int] = field(default_factory=dict)
    #: Per round: silo id -> the masked field vector it uploaded.
    masked_vectors: list[dict[int, list[int]]] = field(default_factory=list)
    #: Per recovery event: (round_no, survivor, dropped silo ids revealed).
    reveals: list[tuple[int, int, tuple[int, ...]]] = field(default_factory=list)


class MaskedAggregationProtocol:
    """Orchestrates masked secure aggregation across a fixed silo roster.

    Unlike :class:`~repro.protocol.runner.PrivateWeightingProtocol`, rounds
    accept *partial participation*: pass ``None`` for a dropped silo's
    vector and the survivors' unmatched masks are reconstructed from
    revealed round keys and subtracted, so the round yields exactly the
    field sum over survivors.

    The instance is deterministic under a ``seed``: DH private keys come
    from a seeded ``random.Random``, so a checkpoint/resume rebuild derives
    identical pair keys and only :attr:`round_no` is dynamic state.
    """

    def __init__(
        self,
        n_silos: int,
        mask_bits: int = 256,
        precision: float = DEFAULT_PRECISION,
        n_max: int = 64,
        seed: int | None = None,
        group: DHGroup | None = None,
    ):
        # Imported here, not at module level: the protocol package imports
        # the crypto package, so a top-level import would be circular.
        from repro.protocol.timing import PhaseTimer

        if n_silos < 1:
            raise ValueError("need at least one silo")
        if mask_bits < 64:
            raise ValueError("mask_bits must be at least 64")
        self.n_silos = n_silos
        self.mask_bits = mask_bits
        self.modulus = 1 << mask_bits
        self.precision = precision
        self.n_max = n_max
        self.c_lcm = lcm_up_to(n_max)
        self.group = group if group is not None else DHGroup.test_group()
        self.rng = random.Random(seed) if seed is not None else None
        self.timer = PhaseTimer()
        self.view = MaskedServerView()
        self.silos: list[MaskedSilo] = []
        self.round_no = 0

    @property
    def mask_bytes(self) -> int:
        """Uplink bytes per coordinate (one field element)."""
        return (self.mask_bits + 7) // 8

    def run_setup(self) -> None:
        """DH keygen and pairwise key agreement (once per training run)."""
        with self.timer.phase("keygen"):
            self.silos = [
                MaskedSilo(s, self.group, rng=self.rng) for s in range(self.n_silos)
            ]
        with self.timer.phase("key_exchange"):
            publics = {s.silo_id: s.dh_public() for s in self.silos}
            self.view.dh_publics = dict(publics)
            for silo in self.silos:
                silo.receive_dh_publics(publics)

    def check_round_magnitude(self, max_abs_value: float, num_terms: int) -> None:
        """Theorem 4 condition (2) for the mask field; raises on overflow."""
        if not check_magnitude_budget(
            self.modulus, self.c_lcm, self.precision, max_abs_value, num_terms
        ):
            raise ValueError(
                "masked-aggregation magnitude budget exceeded: raise "
                "mask_bits, lower n_max, or coarsen precision"
            )

    def run_round(self, field_vectors: list[list[int] | None]) -> list[int]:
        """One aggregation round; ``None`` entries are dropped silos.

        Returns the per-coordinate field sum over the surviving silos'
        plaintext vectors (masks cancelled / recovered), ready for
        :meth:`decode_aggregate`.
        """
        if not self.silos:
            raise RuntimeError("run_setup() must be called before run_round()")
        if len(field_vectors) != self.n_silos:
            raise ValueError("need one (possibly None) vector per silo")
        survivors = [s for s, v in enumerate(field_vectors) if v is not None]
        dropped = [s for s, v in enumerate(field_vectors) if v is None]
        if not survivors:
            raise ValueError("cannot aggregate a round with zero survivors")
        d = len(field_vectors[survivors[0]])
        if any(len(field_vectors[s]) != d for s in survivors):
            raise ValueError("silo vector length mismatch")
        round_no = self.round_no
        m = self.modulus

        with self.timer.phase("mask_and_upload"):
            uploads = {
                s: self.silos[s].masked_payload(field_vectors[s], round_no, m)
                for s in survivors
            }
            self.view.masked_vectors.append(uploads)
        get_registry().counter(
            "secagg_masked_uploads_total",
            help="Masked silo vectors uploaded to the aggregator.",
        ).inc(len(uploads))

        with self.timer.phase("aggregate"):
            totals = [0] * d
            for vec in uploads.values():
                for k in range(d):
                    totals[k] = (totals[k] + vec[k]) % m

        if dropped:
            get_registry().counter(
                "secagg_dropout_recoveries_total",
                help="Dropped silos whose masks were recovered via reveals.",
            ).inc(len(dropped))
            with self.timer.phase("dropout_recovery"):
                for i in survivors:
                    revealed = self.silos[i].reveal_round_keys(dropped, round_no)
                    self.view.reveals.append((round_no, i, tuple(sorted(revealed))))
                    for j, key in revealed.items():
                        stream = prg_field_elements(
                            key, d, m, context=MASK_STREAM_CONTEXT
                        )
                        sign = 1 if j > i else -1
                        for k in range(d):
                            totals[k] = (totals[k] - sign * stream[k]) % m

        self.round_no += 1
        return totals

    def decode_aggregate(self, totals: list[int]) -> np.ndarray:
        """Field sum -> float aggregate (signed decode, /C_LCM, *precision)."""
        return decode_vector(totals, self.precision, self.c_lcm, self.modulus)

    # -- checkpoint serialisation -------------------------------------------

    def state_dict(self) -> dict:
        """Dynamic protocol state; key material is rebuilt from the seed."""
        return {"round_no": self.round_no}

    def load_state(self, state: dict) -> None:
        self.round_no = int(state["round_no"])
