"""The Paillier additively homomorphic cryptosystem.

The private weighting protocol (Protocol 1 of the paper) relies on three
homomorphic operations, all provided here:

- addition of two ciphertexts:      Enc(a) (+) Enc(b)      = Enc(a + b)
- addition of a plaintext scalar:   Enc(a) (+) b           = Enc(a + b)
- multiplication by a plaintext:    Enc(a) (*) k           = Enc(a * k)

Plaintexts live in the additive group F_n = Z/nZ; ciphertexts live in the
multiplicative group mod n^2.  We use the standard g = n + 1 optimisation so
encryption needs a single modular exponentiation (for the random blinding
term r^n) and decryption uses the CRT-free L-function form.

Reference: Paillier, "Public-key cryptosystems based on composite degree
residuosity classes", EUROCRYPT 1999.
"""

from __future__ import annotations

import math
import random
import secrets
from dataclasses import dataclass

from repro.crypto.primes import random_distinct_primes

#: Default modulus size (bits) used by tests and benchmarks.  The paper uses
#: 3072-bit security; we default far smaller so that the full protocol runs
#: quickly, and expose the size as a parameter everywhere.
DEFAULT_KEY_BITS = 512


@dataclass(frozen=True)
class PaillierCiphertext:
    """An element of Z*_{n^2} holding an encrypted value in F_n.

    Instances are immutable; arithmetic returns new ciphertexts.  The
    ciphertext remembers its public key so that homomorphic operations can
    validate operand compatibility.
    """

    value: int
    public_key: "PaillierPublicKey"

    def __add__(self, other: "PaillierCiphertext | int") -> "PaillierCiphertext":
        if isinstance(other, PaillierCiphertext):
            if other.public_key is not self.public_key and other.public_key != self.public_key:
                raise ValueError("cannot add ciphertexts under different keys")
            return self.public_key.add(self, other)
        return self.public_key.add_scalar(self, other)

    __radd__ = __add__

    def __mul__(self, scalar: int) -> "PaillierCiphertext":
        return self.public_key.mul_scalar(self, scalar)

    __rmul__ = __mul__


@dataclass(frozen=True)
class PaillierPublicKey:
    """Paillier public key (n, g) with g = n + 1."""

    n: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def max_plaintext(self) -> int:
        return self.n - 1

    def encrypt(self, plaintext: int, rng: random.Random | None = None) -> PaillierCiphertext:
        """Encrypt ``plaintext`` (reduced into F_n).

        With g = n + 1, ``g^m = 1 + m*n (mod n^2)``, so the ciphertext is
        ``(1 + m*n) * r^n mod n^2`` for a random ``r`` coprime with ``n``.
        """
        m = plaintext % self.n
        n2 = self.n_squared
        r = self._random_unit(rng)
        c = ((1 + m * self.n) % n2) * pow(r, self.n, n2) % n2
        return PaillierCiphertext(c, self)

    def encrypt_vector(
        self, values: list[int], rng: random.Random | None = None
    ) -> list[PaillierCiphertext]:
        """Encrypt each entry of an integer vector."""
        return [self.encrypt(v, rng=rng) for v in values]

    def add(self, a: PaillierCiphertext, b: PaillierCiphertext) -> PaillierCiphertext:
        """Homomorphic addition: Dec(result) = Dec(a) + Dec(b) mod n."""
        return PaillierCiphertext(a.value * b.value % self.n_squared, self)

    def add_scalar(self, a: PaillierCiphertext, scalar: int) -> PaillierCiphertext:
        """Homomorphic plaintext addition: Dec(result) = Dec(a) + scalar mod n.

        Implemented as multiplication by ``g^scalar = 1 + scalar*n`` which is
        far cheaper than a full encryption (no random blinding term).  The
        result is therefore *deterministic* given ``a``; callers that need
        semantic security of the sum should re-randomise or add an encrypted
        zero instead.
        """
        m = scalar % self.n
        n2 = self.n_squared
        return PaillierCiphertext(a.value * ((1 + m * self.n) % n2) % n2, self)

    def mul_scalar(self, a: PaillierCiphertext, scalar: int) -> PaillierCiphertext:
        """Homomorphic scalar multiplication: Dec(result) = Dec(a) * scalar mod n."""
        k = scalar % self.n
        return PaillierCiphertext(pow(a.value, k, self.n_squared), self)

    def rerandomise(
        self, a: PaillierCiphertext, rng: random.Random | None = None
    ) -> PaillierCiphertext:
        """Multiply by an encryption of zero, refreshing the blinding term."""
        r = self._random_unit(rng)
        n2 = self.n_squared
        return PaillierCiphertext(a.value * pow(r, self.n, n2) % n2, self)

    def _random_unit(self, rng: random.Random | None) -> int:
        """Random element of Z*_n (coprime with n)."""
        while True:
            if rng is not None:
                r = rng.randrange(1, self.n)
            else:
                r = secrets.randbelow(self.n - 1) + 1
            if math.gcd(r, self.n) == 1:
                return r


@dataclass(frozen=True)
class PaillierCrt:
    """Precomputed CRT context for a key whose factorisation n = p*q is known.

    Decryption splits into the half-size groups mod p^2 and q^2 -- half-size
    exponents (p-1, q-1) *and* half-size moduli, ~3-4x faster than the
    single ``pow(c, lambda, n^2)`` -- and recombines by the Chinese remainder
    theorem.  The same split accelerates the blinding term ``r^n mod n^2``
    of encryption (~2x: the exponent n cannot shrink, but both moduli do).
    Only the key holder (the server in Protocol 1) can use this path; all
    results are bit-identical to the generic form.
    """

    p: int
    q: int
    p2: int
    q2: int
    #: hp = L_p(g^(p-1) mod p^2)^-1 mod p, the per-factor decryption helper.
    hp: int
    hq: int
    p_inv_q: int
    p2_inv_q2: int
    n: int
    n2: int

    @classmethod
    def from_factors(cls, p: int, q: int) -> "PaillierCrt":
        if p == q:
            raise ValueError("factors must be distinct primes")
        n = p * q
        n2 = n * n
        p2 = p * p
        q2 = q * q
        g = n + 1
        hp = pow((pow(g, p - 1, p2) - 1) // p, -1, p)
        hq = pow((pow(g, q - 1, q2) - 1) // q, -1, q)
        return cls(
            p=p, q=q, p2=p2, q2=q2, hp=hp, hq=hq,
            p_inv_q=pow(p, -1, q), p2_inv_q2=pow(p2, -1, q2), n=n, n2=n2,
        )

    def decrypt_value(self, c: int) -> int:
        """Decrypt a raw ciphertext value to an element of F_n."""
        mp = (pow(c % self.p2, self.p - 1, self.p2) - 1) // self.p * self.hp % self.p
        mq = (pow(c % self.q2, self.q - 1, self.q2) - 1) // self.q * self.hq % self.q
        return (mp + self.p * ((mq - mp) * self.p_inv_q % self.q)) % self.n

    def pow_to_n(self, r: int) -> int:
        """``r^n mod n^2`` via the CRT split (the encryption blinding term)."""
        xp = pow(r % self.p2, self.n, self.p2)
        xq = pow(r % self.q2, self.n, self.q2)
        return (xp + self.p2 * ((xq - xp) * self.p2_inv_q2 % self.q2)) % self.n2


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Paillier private key using the (lambda, mu) decryption form.

    When the key was generated with ``with_crt=True`` the factorisation is
    retained as a :class:`PaillierCrt` context and :meth:`decrypt` takes the
    CRT fast path; results are identical either way.
    """

    public_key: PaillierPublicKey
    lam: int
    mu: int
    crt: PaillierCrt | None = None

    def decrypt(self, ciphertext: PaillierCiphertext) -> int:
        """Decrypt to an element of F_n (non-negative, < n)."""
        if ciphertext.public_key != self.public_key:
            raise ValueError("ciphertext does not match this private key")
        if self.crt is not None:
            return self.crt.decrypt_value(ciphertext.value)
        n = self.public_key.n
        n2 = self.public_key.n_squared
        u = pow(ciphertext.value, self.lam, n2)
        l_value = (u - 1) // n
        return l_value * self.mu % n

    def decrypt_signed(self, ciphertext: PaillierCiphertext) -> int:
        """Decrypt and map F_n to the centered integer range (-n/2, n/2]."""
        m = self.decrypt(ciphertext)
        n = self.public_key.n
        return m - n if m > n // 2 else m

    def decrypt_vector(self, ciphertexts: list[PaillierCiphertext]) -> list[int]:
        return [self.decrypt(c) for c in ciphertexts]


@dataclass(frozen=True)
class PaillierKeypair:
    public_key: PaillierPublicKey
    private_key: PaillierPrivateKey


def generate_paillier_keypair(
    bits: int = DEFAULT_KEY_BITS,
    rng: random.Random | None = None,
    with_crt: bool = False,
) -> PaillierKeypair:
    """Generate a Paillier keypair with an n of roughly ``bits`` bits.

    Args:
        bits: size of the modulus n = p*q; each prime gets bits//2 bits.
        rng: optional deterministic PRNG for reproducible tests.  Production
            use should leave it ``None`` (secrets-based randomness).
        with_crt: retain the factorisation on the private key so decryption
            (and the key holder's own encryptions) use the CRT fast path.
            The RNG stream and the resulting key are identical either way.
    """
    if bits < 64:
        raise ValueError(f"Paillier modulus too small: {bits} bits")
    p, q = random_distinct_primes(bits // 2, rng=rng)
    n = p * q
    public = PaillierPublicKey(n)
    lam = math.lcm(p - 1, q - 1)
    # mu = (L(g^lambda mod n^2))^-1 mod n; with g = n + 1 this reduces to
    # lambda^-1 mod n, but we compute the general form for clarity.
    n2 = n * n
    u = pow(n + 1, lam, n2)
    l_value = (u - 1) // n
    mu = pow(l_value, -1, n)
    crt = PaillierCrt.from_factors(p, q) if with_crt else None
    private = PaillierPrivateKey(public, lam, mu, crt=crt)
    return PaillierKeypair(public, private)
