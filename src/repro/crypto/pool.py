"""Offline randomizer pools for Paillier encryption.

A Paillier ciphertext is ``(1 + m*n) * r^n mod n^2``: essentially all of its
cost is the blinding term ``r^n``, which is *independent of the message*.
Protocol 1 spends one fresh encryption per (coordinate, silo) per round --
the online overhead the paper's enhanced protocol proposes to pregenerate
during idle time.  :class:`RandomizerPool` implements that offline/online
split: :meth:`refill` computes blinding terms ahead of time (using the CRT
split when the key holder's factorisation is available), and online
encryption via :meth:`encrypt` is then just two modular multiplications.
A pooled ``r^n`` *is* an encryption of zero, so the same pool serves the
silos' ``Enc(0)`` accumulator seeds and the server's OT dummy slots.

Determinism contract: the pool draws its randomizers from the same RNG, in
the same order, as on-line encryption would, and :meth:`take` consumes them
FIFO (generating on demand when empty).  Under a seeded RNG a pooled
encryption is therefore bit-identical to the ciphertext the reference
backend produces -- the equivalence the fast-backend tests assert.
"""

from __future__ import annotations

import random
from collections import deque

from repro.crypto.paillier import PaillierCiphertext, PaillierCrt, PaillierPublicKey


class RandomizerPool:
    """FIFO pool of precomputed Paillier blinding terms ``r^n mod n^2``.

    Args:
        public_key: key the randomizers blind under.
        crt: the key holder's CRT context, if the factorisation is known
            (server side); halves the cost of each ``r^n``.
        rng: deterministic PRNG for reproducible tests (None = secrets).
    """

    def __init__(
        self,
        public_key: PaillierPublicKey,
        crt: PaillierCrt | None = None,
        rng: random.Random | None = None,
    ):
        if crt is not None and crt.n != public_key.n:
            raise ValueError("CRT context does not match the public key")
        self.public_key = public_key
        self.crt = crt
        self.rng = rng
        self._ready: deque[int] = deque()

    def __len__(self) -> int:
        return len(self._ready)

    def _generate(self) -> int:
        r = self.public_key._random_unit(self.rng)
        if self.crt is not None:
            return self.crt.pow_to_n(r)
        n2 = self.public_key.n_squared
        return pow(r, self.public_key.n, n2)

    def refill(self, count: int) -> None:
        """Pregenerate ``count`` blinding terms (the offline phase)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._ready.extend(self._generate() for _ in range(count))

    def take(self) -> int:
        """Next blinding term ``r^n mod n^2`` (== a fresh ``Enc(0)`` value).

        Falls back to on-demand generation when the pool is empty, so the
        RNG draw order never deviates from the reference backend's.
        """
        if self._ready:
            return self._ready.popleft()
        return self._generate()

    def encrypt(self, plaintext: int) -> PaillierCiphertext:
        """Online encryption: two multiplications using a pooled randomizer."""
        pk = self.public_key
        n2 = pk.n_squared
        m = plaintext % pk.n
        value = ((1 + m * pk.n) % n2) * self.take() % n2
        return PaillierCiphertext(value, pk)
