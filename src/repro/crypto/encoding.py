"""Fixed-point encoding between real vectors and the finite field F_n.

Implements Algorithm 5 of the paper.  Real numbers (model deltas, Gaussian
noise) are divided by a precision parameter P (e.g. 1e-10), rounded to
integers, and mapped into F_n; signed values use the upper half of the field
for negatives.  Decoding undoes the mapping and also removes the C_LCM
factor that Protocol 1 multiplies into every term so that the per-user
division by N_u stays exact on integers.

Correctness requires the accumulated integer magnitudes to stay below n/2
(Theorem 4, condition (2)); :func:`check_magnitude_budget` validates the
bound for given protocol parameters.

The sparse pair :func:`encode_sparse_vector` / :func:`decode_sparse_vector`
is the wire format of the compressed secure round: only the coordinates on
a shared (data-independent) support are encoded and encrypted, every
unsent coordinate decodes to exactly zero, and the magnitude budget is
unchanged because it is a per-coordinate bound.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

#: Paper's example precision parameter.
DEFAULT_PRECISION = 1e-10


def encode_scalar(x: float, precision: float, modulus: int) -> int:
    """Encode one real number into F_n (Algorithm 5, Encode).

    ``x`` is scaled to fixed point by ``1/precision``, rounded, and reduced
    mod n; negative values wrap to the upper half of the field.
    """
    if precision <= 0:
        raise ValueError("precision must be positive")
    scaled = int(round(x / precision))
    return scaled % modulus


def decode_scalar(x: int, precision: float, c_lcm: int, modulus: int) -> float:
    """Decode one field element back to a real number (Algorithm 5, Decode).

    Maps the field element to a signed integer (values above n//2 are
    negative), removes the C_LCM factor, and rescales by ``precision``.
    """
    if x > modulus // 2:
        x = x - modulus
    return (x / c_lcm) * precision


def encode_vector(values: Sequence[float] | np.ndarray, precision: float, modulus: int) -> list[int]:
    """Encode a real vector into F_n with one vectorised rounding pass.

    The scaling and round-half-even happen in a single ``np.rint`` over the
    whole vector (bit-identical to per-element ``round``); only the modular
    reduction needs Python integers, since field elements routinely exceed
    64-bit range.
    """
    if precision <= 0:
        raise ValueError("precision must be positive")
    scaled = np.rint(np.asarray(values, dtype=np.float64).ravel() / precision)
    return [int(v) % modulus for v in scaled]


def decode_vector(
    values: Sequence[int], precision: float, c_lcm: int, modulus: int
) -> np.ndarray:
    """Decode a vector of field elements back to float64.

    The signed mapping stays in big-int arithmetic and the C_LCM division
    is Python's correctly-rounded int/int true division (raw field
    elements can exceed float range, so neither may go through numpy);
    only the final precision scaling is one vectorised pass.  Results are
    bit-identical to the scalar :func:`decode_scalar` form.
    """
    half = modulus // 2
    signed = [v - modulus if v > half else v for v in map(int, values)]
    return np.array([s / c_lcm for s in signed], dtype=np.float64) * precision


def encode_sparse_vector(
    values: Sequence[float] | np.ndarray,
    indices: Sequence[int] | np.ndarray,
    precision: float,
    modulus: int,
) -> list[int]:
    """Encode only the coordinates at ``indices`` (sparse wire format).

    The compressed secure path ships ``(shared support, k field elements)``
    instead of d elements; the support is derived from the silos' shared
    seed, so only the values cross the wire.  Encoding the selected
    coordinates through :func:`encode_vector` keeps the fixed-point
    mapping bit-identical to the dense form.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    idx = np.asarray(indices, dtype=np.int64)
    if idx.size and (idx.min() < 0 or idx.max() >= values.size):
        raise ValueError("sparse indices out of range")
    return encode_vector(values[idx], precision, modulus)


def decode_sparse_vector(
    values: Sequence[int],
    indices: Sequence[int] | np.ndarray,
    dim: int,
    precision: float,
    c_lcm: int,
    modulus: int,
) -> np.ndarray:
    """Decode sparse field elements back to a dense float64 ``dim``-vector.

    The inverse of :func:`encode_sparse_vector` (up to the protocol's
    C_LCM factor): decoded values land at ``indices``, every unsent
    coordinate is exactly 0.0 -- the receiver-side reconstruction the
    sparse secure round produces.
    """
    idx = np.asarray(indices, dtype=np.int64)
    if len(values) != idx.size:
        raise ValueError("need one field element per index")
    if idx.size and (idx.min() < 0 or idx.max() >= dim):
        raise ValueError("sparse indices out of range")
    dense = np.zeros(dim)
    dense[idx] = decode_vector(values, precision, c_lcm, modulus)
    return dense


def lcm_up_to(n_max: int) -> int:
    """C_LCM: least common multiple of 1..n_max (Protocol 1, setup (a)).

    Grows like e^n_max, so realistic deployments restrict the admissible
    per-user record counts (paper suggests e.g. {10, 100, 1000, 10000}).
    """
    if n_max < 1:
        raise ValueError("n_max must be at least 1")
    return math.lcm(*range(1, n_max + 1))


def lcm_of_counts(counts: Sequence[int]) -> int:
    """C_LCM restricted to an explicit set of admissible record counts."""
    counts = [c for c in counts if c >= 1]
    if not counts:
        raise ValueError("need at least one positive count")
    return math.lcm(*counts)


def check_magnitude_budget(
    modulus: int,
    c_lcm: int,
    precision: float,
    max_abs_value: float,
    num_terms: int,
) -> bool:
    """Check Theorem 4's overflow condition (2).

    The field sum accumulated by the server is bounded by
    ``num_terms * Encode(max_abs_value) * c_lcm``; correctness requires this
    to be below n/2 (signed decoding).  Returns True when the budget holds.
    """
    max_encoded = int(math.ceil(max_abs_value / precision)) + 1
    return num_terms * max_encoded * c_lcm < modulus // 2
