"""Pairwise additive masking over F_n (secure aggregation).

This is the cancellation trick at the heart of Bonawitz-style secure
aggregation, used twice in Protocol 1:

- setup step (e): silos mask their blinded histograms so the server only
  learns the *sum* of blinded counts, and
- weighting step (c): silos mask their per-round encrypted model deltas
  (the mask enters the Paillier ciphertext as a homomorphic scalar addition).

For an ordered pair of silos (s, s') with a shared key, both expand the same
PRG stream; silo s adds the stream if s < s' and subtracts it if s > s', so
all mask contributions cancel exactly in the field sum over all silos.
"""

from __future__ import annotations

import hashlib


def prg_field_elements(seed: bytes, count: int, modulus: int, context: str = "") -> list[int]:
    """Expand ``seed`` into ``count`` pseudo-random elements of F_modulus.

    Uses SHA-256 in counter mode.  To keep the modular reduction bias
    negligible, 16 extra bytes beyond the modulus size are drawn per element
    (bias < 2^-128).

    Args:
        seed: PRG seed (typically a derived shared key).
        count: number of field elements to produce.
        modulus: field size n (must be >= 2).
        context: optional domain-separation label mixed into the stream, so
            different protocol steps sharing a seed get independent streams.
    """
    if modulus < 2:
        raise ValueError("modulus must be at least 2")
    byte_len = (modulus.bit_length() + 7) // 8 + 16
    base = seed + b"|" + context.encode()
    out: list[int] = []
    for i in range(count):
        raw = b""
        block = 0
        while len(raw) < byte_len:
            raw += hashlib.sha256(base + i.to_bytes(8, "big") + block.to_bytes(4, "big")).digest()
            block += 1
        out.append(int.from_bytes(raw[:byte_len], "big") % modulus)
    return out


class PairwiseMasker:
    """Generates the net additive mask for one party in a pairwise scheme.

    Each party is identified by an integer id; ``pair_keys`` maps peer id ->
    shared key bytes (both peers must hold identical bytes for the pair).
    The net mask vector of party i is::

        sum_{j > i} PRG(key_ij)  -  sum_{j < i} PRG(key_ij)    (mod n)

    so the component-wise sum of all parties' masks is zero in F_n.
    """

    def __init__(self, party_id: int, pair_keys: dict[int, bytes], modulus: int):
        self.party_id = party_id
        self.pair_keys = dict(pair_keys)
        self.modulus = modulus

    def mask_vector(self, length: int, context: str) -> list[int]:
        """Net mask vector of ``length`` elements for the given context.

        The context must be unique per protocol step (e.g. include the round
        number); reusing a context would reuse mask values, which is both a
        correctness hazard (non-cancelling) and a security hazard.
        """
        total = [0] * length
        for peer, key in sorted(self.pair_keys.items()):
            if peer == self.party_id:
                continue
            stream = prg_field_elements(key, length, self.modulus, context=context)
            if peer > self.party_id:
                for k in range(length):
                    total[k] = (total[k] + stream[k]) % self.modulus
            else:
                for k in range(length):
                    total[k] = (total[k] - stream[k]) % self.modulus
        return total

    def mask_scalars(self, count: int, context: str) -> list[int]:
        """Alias of :meth:`mask_vector`, for readability at call sites."""
        return self.mask_vector(count, context)
