"""Probabilistic primality testing and prime generation.

The Paillier and Diffie-Hellman implementations need random primes of a few
hundred to a few thousand bits.  We implement the standard Miller-Rabin test
with a deterministic small-prime pre-filter.  ``secrets`` provides the
cryptographically secure randomness; an optional ``random.Random`` can be
injected for reproducible tests.
"""

from __future__ import annotations

import random
import secrets

# Small primes used to cheaply reject candidates before Miller-Rabin.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
]

# Deterministic Miller-Rabin witness sets: testing against these bases is
# *provably* correct for all n below the stated bounds (Sinclair / Jaeschke).
_DETERMINISTIC_BASES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37]
_DETERMINISTIC_BOUND = 3317044064679887385961981  # correct below this bound


def _miller_rabin_round(n: int, a: int, d: int, r: int) -> bool:
    """One Miller-Rabin round; returns True if ``n`` passes for base ``a``."""
    x = pow(a, d, n)
    if x == 1 or x == n - 1:
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rounds: int = 40, rng: random.Random | None = None) -> bool:
    """Miller-Rabin primality test.

    For ``n`` below ~3.3e24 the test is deterministic (fixed witness set);
    above that it is probabilistic with error probability at most
    ``4**-rounds``.

    Args:
        n: candidate integer.
        rounds: number of random rounds for large ``n``.
        rng: optional PRNG for reproducible witness choice in tests.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False

    # Write n - 1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    if n < _DETERMINISTIC_BOUND:
        bases = [a for a in _DETERMINISTIC_BASES if a < n - 1]
    elif rng is not None:
        bases = [rng.randrange(2, n - 1) for _ in range(rounds)]
    else:
        bases = [secrets.randbelow(n - 3) + 2 for _ in range(rounds)]

    return all(_miller_rabin_round(n, a, d, r) for a in bases)


def random_prime(bits: int, rng: random.Random | None = None) -> int:
    """Generate a random prime with exactly ``bits`` bits.

    The top two bits are forced to one so that the product of two ``bits``-bit
    primes has exactly ``2 * bits`` bits (required by Paillier key sizing),
    and the low bit is forced to one so candidates are odd.
    """
    if bits < 8:
        raise ValueError(f"prime size too small: {bits} bits")
    while True:
        if rng is not None:
            candidate = rng.getrandbits(bits)
        else:
            candidate = secrets.randbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate


def random_distinct_primes(bits: int, rng: random.Random | None = None) -> tuple[int, int]:
    """Generate two distinct random primes of ``bits`` bits each."""
    p = random_prime(bits, rng=rng)
    while True:
        q = random_prime(bits, rng=rng)
        if q != p:
            return p, q
