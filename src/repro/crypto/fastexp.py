"""Fixed-base windowed modular exponentiation.

In Protocol 1's weighting step every user's encrypted inverse
``Enc(B_inv(N_u))`` is raised to d different ~n-bit scalars -- one per model
coordinate.  Plain ``pow(c, k, n^2)`` redoes ~1.2 * bits modular
multiplications (squarings plus window multiplies) *per scalar*; with the
base fixed across all d scalars we can precompute a radix-``2^w`` digit
table once and then answer every exponentiation with at most
``ceil(bits / w)`` multiplications and **zero squarings**:

    base^e = prod_i  base^(digit_i * 2^(w*i))      (digits of e in radix 2^w)

where every factor ``base^(j * 2^(w*i))`` is a table lookup.

Cost model, in units of one modular multiplication:

    table build:    ceil(t / w) * (2^w - 1)
    per exponent:   ceil(t / w)          (upper bound; zero digits are free)
    plain pow:      ~1.2 * t             (CPython's internal sliding window)

:func:`choose_window` minimises the total over w for a known number of
exponentiations, and :func:`worthwhile` reports whether fixed-base beats
plain ``pow`` at all -- for very few exponentiations the table build
dominates and plain ``pow`` wins, so callers should fall back.
"""

from __future__ import annotations

#: Effective modular multiplications per exponent bit of CPython's ``pow``
#: (squarings plus sliding-window multiplies, weighted equally -- measured
#: within ~10% on 512-6144 bit operands).
PLAIN_POW_MULTS_PER_BIT = 1.2

#: Largest window size considered (tables grow as 2^w per digit row).
MAX_WINDOW = 12

#: Cap on total table entries for automatic window selection.  Entries are
#: modulus-sized bigints, so 2^16 entries is ~8 MB at 512-bit keys and
#: ~50 MB at the paper's 3072-bit keys -- per live table (one per user,
#: per worker process).  Without the cap, a large enough batch would push
#: the cost model to w=12 and gigabyte-scale tables.
MAX_TABLE_ENTRIES = 1 << 16


def _digits(exp_bits: int, window: int) -> int:
    return -(-exp_bits // window)


def fixed_base_cost(exp_bits: int, window: int, n_exps: int) -> int:
    """Total modular multiplications: table build plus ``n_exps`` exponents."""
    d = _digits(exp_bits, window)
    return d * ((1 << window) - 1) + n_exps * d


def choose_window(exp_bits: int, n_exps: int) -> int:
    """The window width minimising :func:`fixed_base_cost` within the
    :data:`MAX_TABLE_ENTRIES` memory cap.

    Larger batches amortise bigger tables: d = 1000 exponentiations of
    512-bit scalars pick w = 8 (64 multiplications per exponent), while a
    handful of exponentiations pick a small window.
    """
    if exp_bits < 1:
        raise ValueError("exp_bits must be positive")
    if n_exps < 0:
        raise ValueError("n_exps must be non-negative")
    candidates = [
        w
        for w in range(1, MAX_WINDOW + 1)
        if _digits(exp_bits, w) << w <= MAX_TABLE_ENTRIES
    ] or [1]
    return min(candidates, key=lambda w: fixed_base_cost(exp_bits, w, n_exps))


def worthwhile(exp_bits: int, n_exps: int) -> bool:
    """True when fixed-base beats ``n_exps`` plain ``pow`` calls."""
    best = fixed_base_cost(exp_bits, choose_window(exp_bits, n_exps), n_exps)
    return best < PLAIN_POW_MULTS_PER_BIT * exp_bits * n_exps


class FixedBaseExp:
    """Precomputed fixed-base exponentiator ``e -> base^e mod modulus``.

    The table holds ``base^(j * 2^(w*i))`` for every digit position i and
    digit value j, so :meth:`pow` is a product of one table entry per
    nonzero digit -- no squarings, and (unlike repeated ``pow``) the
    ~``1.2 * exp_bits`` per-call cost collapses to ``exp_bits / w``
    multiplications.

    Args:
        base: the fixed base (reduced mod ``modulus``).
        modulus: modulus of the group (``n^2`` for Paillier ciphertexts).
        exp_bits: maximum bit length of exponents that will be passed in.
        window: radix exponent w; ``None`` selects :func:`choose_window`.
        expected_exps: expected number of :meth:`pow` calls, used only for
            automatic window selection (default 256).
    """

    __slots__ = ("modulus", "window", "exp_bits", "_digits", "_mask", "_rows")

    def __init__(
        self,
        base: int,
        modulus: int,
        exp_bits: int,
        window: int | None = None,
        expected_exps: int = 256,
    ):
        if modulus < 2:
            raise ValueError("modulus must be at least 2")
        if exp_bits < 1:
            raise ValueError("exp_bits must be positive")
        if window is None:
            window = choose_window(exp_bits, expected_exps)
        if not 1 <= window <= MAX_WINDOW:
            raise ValueError(f"window must be in 1..{MAX_WINDOW}")
        self.modulus = modulus
        self.window = window
        self.exp_bits = exp_bits
        self._digits = _digits(exp_bits, window)
        self._mask = (1 << window) - 1
        radix = 1 << window
        b = base % modulus
        rows = []
        for _ in range(self._digits):
            row = [1] * radix
            acc = 1
            for j in range(1, radix):
                acc = acc * b % modulus
                row[j] = acc
            rows.append(row)
            # Base for the next digit position: base^(2^w * 2^(w*i)).
            b = acc * b % modulus
        self._rows = rows

    def pow(self, exponent: int) -> int:
        """``base^exponent mod modulus`` via table lookups.

        ``exponent`` must be non-negative and fit in ``exp_bits`` bits.
        """
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        if exponent.bit_length() > self.exp_bits:
            raise ValueError(
                f"exponent has {exponent.bit_length()} bits; table covers {self.exp_bits}"
            )
        m = self.modulus
        w = self.window
        mask = self._mask
        rows = self._rows
        acc = None
        i = 0
        while exponent:
            digit = exponent & mask
            if digit:
                entry = rows[i][digit]
                acc = entry if acc is None else acc * entry % m
            exponent >>= w
            i += 1
        return 1 % m if acc is None else acc
