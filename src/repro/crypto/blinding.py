"""Multiplicative blinding over F_n.

Protocol 1 hides the per-user record counts N_u from the server by having
every silo multiply its count by the *same* secret random unit r_u (derived
from a shared seed R that the server never sees).  The server can sum the
blinded per-silo counts (the blind factors out: sum_s r_u * n_su =
r_u * N_u), invert the blinded total in F_n, and return Paillier-encrypted
inverses -- all without ever learning N_u, because r_u * N_u is uniformly
distributed over F_n* when r_u is uniform.

The silos later cancel the blind by multiplying their ciphertext scalars by
r_u again (r_u * (r_u * N_u)^-1 = N_u^-1 mod n).
"""

from __future__ import annotations

import hashlib
import math


class BlindingFactory:
    """Derives per-user multiplicative blinding units r_u from a shared seed.

    All silos construct a factory from the same seed R and modulus n, so they
    derive identical r_u values without any further communication.  Values
    are guaranteed coprime with n (retry on gcd != 1; for a Paillier modulus
    the failure probability is negligible, see Eq. (4) of the paper).
    """

    def __init__(self, seed: bytes, modulus: int):
        if modulus < 2:
            raise ValueError("modulus must be at least 2")
        self.seed = seed
        self.modulus = modulus

    def blind_for_user(self, user_id: int) -> int:
        """The blinding unit r_u in F_n* for the given user id."""
        byte_len = (self.modulus.bit_length() + 7) // 8 + 16
        attempt = 0
        while True:
            raw = b""
            block = 0
            while len(raw) < byte_len:
                raw += hashlib.sha256(
                    self.seed
                    + b"|blind|"
                    + user_id.to_bytes(8, "big")
                    + attempt.to_bytes(4, "big")
                    + block.to_bytes(4, "big")
                ).digest()
                block += 1
            r = int.from_bytes(raw[:byte_len], "big") % self.modulus
            if r != 0 and math.gcd(r, self.modulus) == 1:
                return r
            attempt += 1

    def blind(self, user_id: int, value: int) -> int:
        """Blind ``value``: r_u * value mod n."""
        return self.blind_for_user(user_id) * value % self.modulus

    def unblind_inverse(self, user_id: int, blinded_inverse: int) -> int:
        """Given (r_u * x)^-1, recover x^-1 = r_u * (r_u * x)^-1 mod n."""
        return self.blind_for_user(user_id) * blinded_inverse % self.modulus
