"""Finite-field Diffie-Hellman key agreement.

Protocol 1 uses DH twice: (i) every pair of silos derives a shared key that
seeds the pairwise additive masks of secure aggregation, and (ii) silo 0
distributes the shared blinding seed R encrypted under each pairwise key.

We implement classic DH over a safe-prime group.  The RFC 3526 2048-bit MODP
group is included for realistic runs; a small hard-coded 512-bit safe-prime
group keeps the tests fast.  Shared secrets are passed through a SHA-256 KDF
with a context label so that independent purposes (mask PRG, seed transport)
use independent keys.
"""

from __future__ import annotations

import hashlib
import random
import secrets
from dataclasses import dataclass

# RFC 3526 group 14 (2048-bit MODP), generator 2.
RFC3526_PRIME_2048 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E08"
    "8A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B"
    "302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9"
    "A637ED6B0BFF5CB6F406B7EDEE386BFB5A899FA5AE9F24117C4B1FE6"
    "49286651ECE45B3DC2007CB8A163BF0598DA48361C55D39A69163FA8"
    "FD24CF5F83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3BE39E772C"
    "180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFF"
    "FFFFFFFF",
    16,
)

@dataclass(frozen=True)
class DHGroup:
    """A multiplicative group mod a safe prime with a fixed generator."""

    prime: int
    generator: int = 2

    @classmethod
    def rfc3526_2048(cls) -> "DHGroup":
        return cls(RFC3526_PRIME_2048, 2)

    @classmethod
    def test_group(cls) -> "DHGroup":
        """Small (512-bit) group for fast tests; NOT for production."""
        return cls(_test_prime(), 2)

    def keypair(self, rng: random.Random | None = None) -> "DHKeypair":
        """Sample a private exponent and compute the public value.

        By default the private key comes from the ``secrets`` CSPRNG --
        the default path never reads or advances the global ``random``
        state (a regression test pins this).  Pass an explicit seeded
        ``random.Random`` only for reproducible tests and simulations.
        """
        upper = self.prime - 2
        if rng is not None:
            private = rng.randrange(2, upper)
        else:
            private = secrets.randbelow(upper - 2) + 2
        public = pow(self.generator, private, self.prime)
        return DHKeypair(group=self, private=private, public=public)


_TEST_PRIME_CACHE: int | None = None


def _test_prime() -> int:
    """Return a 512-bit safe prime, generating (and caching) one on demand.

    Generating on demand avoids shipping a magic constant whose safety the
    reader cannot check; the result is cached for the process lifetime so the
    cost is paid once per test session.
    """
    global _TEST_PRIME_CACHE
    if _TEST_PRIME_CACHE is None:
        from repro.crypto.primes import is_probable_prime

        rng = random.Random(0xD1F5)
        while True:
            q = rng.getrandbits(511) | (1 << 510) | 1
            if not is_probable_prime(q):
                continue
            p = 2 * q + 1
            if is_probable_prime(p):
                _TEST_PRIME_CACHE = p
                break
    return _TEST_PRIME_CACHE


@dataclass(frozen=True)
class DHKeypair:
    group: DHGroup
    private: int
    public: int

    def shared_secret(self, peer_public: int) -> int:
        """Raw DH shared secret g^(ab) mod p."""
        if not 1 < peer_public < self.group.prime - 1:
            raise ValueError("peer public value out of range")
        return pow(peer_public, self.private, self.group.prime)


def derive_shared_key(secret: int, context: str) -> bytes:
    """KDF: hash the raw shared secret with a purpose label into 32 bytes.

    Using a context label gives independent keys for independent purposes
    (e.g. ``"secure-agg"`` vs ``"seed-transport"``) from one DH exchange.
    """
    secret_bytes = secret.to_bytes((secret.bit_length() + 7) // 8 or 1, "big")
    return hashlib.sha256(b"uldp-fl|" + context.encode() + b"|" + secret_bytes).digest()


def encrypt_with_key(key: bytes, plaintext: bytes) -> bytes:
    """One-time-pad style stream encryption with a SHA-256 counter keystream.

    Used to transport the shared blinding seed R from silo 0 to the other
    silos (Protocol 1, setup step (c)).  The key must be unique per message
    (here: derived per silo pair), making keystream reuse impossible.
    """
    keystream = _keystream(key, len(plaintext))
    return bytes(a ^ b for a, b in zip(plaintext, keystream))


def decrypt_with_key(key: bytes, ciphertext: bytes) -> bytes:
    """Inverse of :func:`encrypt_with_key` (XOR stream is an involution)."""
    return encrypt_with_key(key, ciphertext)


def _keystream(key: bytes, length: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < length:
        out.extend(hashlib.sha256(key + counter.to_bytes(8, "big")).digest())
        counter += 1
    return bytes(out[:length])
