"""Phase timing instrumentation for the protocol benchmarks (Figs. 10-11).

The paper reports per-phase execution times (key exchange, blinded-histogram
preparation, local training, encrypted aggregation).  :class:`PhaseTimer`
accumulates wall-clock durations under named phases; the protocol runner
wraps each step with it so benchmarks can read the breakdown directly.

Each :meth:`PhaseTimer.phase` block also opens a ``phase``-kind span on
the process trace recorder (:mod:`repro.obs.trace`), so enabling tracing
surfaces every protocol and secure-aggregation phase in ``trace.jsonl``
with no further instrumentation.

Concurrency: one ``PhaseTimer`` instance is **not** thread-safe -- its
totals are plain float adds with no lock, so two threads timing phases
on the same instance can lose updates.  Give each worker (thread or
process) its own timer and combine them afterwards with :meth:`merge`;
that is how the protocol runner accounts for its process-pool workers.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager

from repro.obs.trace import get_recorder


class PhaseTimer:
    """Accumulates wall-clock time per named phase.

    Not thread-safe; see the module docstring.  Worker timers merge into
    a parent with :meth:`merge`.
    """

    def __init__(self):
        self.totals: dict[str, float] = defaultdict(float)
        self.counts: dict[str, int] = defaultdict(int)

    @contextmanager
    def phase(self, name: str):
        with get_recorder().span(name, kind="phase"):
            start = time.perf_counter()
            try:
                yield
            finally:
                self.totals[name] += time.perf_counter() - start
                self.counts[name] += 1

    def add(self, name: str, seconds: float) -> None:
        """Record an externally measured duration."""
        if seconds < 0:
            raise ValueError("duration must be non-negative")
        self.totals[name] += seconds
        self.counts[name] += 1

    def merge(self, other: "PhaseTimer") -> "PhaseTimer":
        """Fold another timer's totals and counts into this one.

        The combining step for per-worker timers: each worker times its
        own phases on a private instance, and the parent merges them once
        the workers are done.  Returns ``self`` for chaining.
        """
        for name, seconds in other.totals.items():
            self.totals[name] += seconds
        for name, count in other.counts.items():
            self.counts[name] += count
        return self

    def report(self) -> dict[str, float]:
        """Total seconds per phase (copy)."""
        return dict(self.totals)

    def summary(self) -> str:
        lines = [
            f"  {name:<28s} {seconds * 1000:10.1f} ms  (x{self.counts[name]})"
            for name, seconds in sorted(self.totals.items())
        ]
        return "\n".join(lines)
