"""Phase timing instrumentation for the protocol benchmarks (Figs. 10-11).

The paper reports per-phase execution times (key exchange, blinded-histogram
preparation, local training, encrypted aggregation).  :class:`PhaseTimer`
accumulates wall-clock durations under named phases; the protocol runner
wraps each step with it so benchmarks can read the breakdown directly.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager


class PhaseTimer:
    """Accumulates wall-clock time per named phase."""

    def __init__(self):
        self.totals: dict[str, float] = defaultdict(float)
        self.counts: dict[str, int] = defaultdict(int)

    @contextmanager
    def phase(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.totals[name] += time.perf_counter() - start
            self.counts[name] += 1

    def add(self, name: str, seconds: float) -> None:
        """Record an externally measured duration."""
        if seconds < 0:
            raise ValueError("duration must be non-negative")
        self.totals[name] += seconds
        self.counts[name] += 1

    def report(self) -> dict[str, float]:
        """Total seconds per phase (copy)."""
        return dict(self.totals)

    def summary(self) -> str:
        lines = [
            f"  {name:<28s} {seconds * 1000:10.1f} ms  (x{self.counts[name]})"
            for name, seconds in sorted(self.totals.items())
        ]
        return "\n".join(lines)
