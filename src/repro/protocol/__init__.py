"""Protocol 1: the private weighting protocol of Section 4.

- :mod:`repro.protocol.parties` -- the silo and server roles, one method
  per lettered protocol step.
- :mod:`repro.protocol.runner` -- orchestration, phase timing, and the
  server-view transcript used by the privacy tests.
- :mod:`repro.protocol.oblivious` -- Naor-Pinkas 1-out-of-P OT and the
  private user-level sub-sampling extension.
- :mod:`repro.protocol.secure_method` -- :class:`SecureUldpAvg`, the
  ULDP-AVG-w method running its aggregation through the real protocol.
"""

from repro.protocol.oblivious import OTReceiver, OTSender, PrivateSubsampler, transfer
from repro.protocol.parties import ServerParty, SiloParty
from repro.protocol.runner import PrivateWeightingProtocol, ServerView
from repro.protocol.secure_method import SecureUldpAvg
from repro.protocol.timing import PhaseTimer

__all__ = [
    "OTReceiver",
    "OTSender",
    "PrivateSubsampler",
    "transfer",
    "ServerParty",
    "SiloParty",
    "PrivateWeightingProtocol",
    "ServerView",
    "SecureUldpAvg",
    "PhaseTimer",
]
