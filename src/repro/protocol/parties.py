"""The two party roles of Protocol 1: silos and the aggregation server.

Every method on these classes corresponds to a lettered step of Protocol 1
in the paper (noted in the docstrings).  The parties communicate only
through the values returned here; the orchestration (and hence the exact
set of values each party observes) lives in
:mod:`repro.protocol.runner`, which also records a transcript of the
server's view for the privacy tests (Theorem 5).

Conventions:

- all field elements are Python ints in F_n (n = Paillier modulus);
- model vectors are encoded coordinate-wise (length d lists of ints);
- pairwise mask contexts include the step label and round number so masks
  are never reused.

Both parties take ``crypto_backend="reference" | "fast"``:

- **reference** -- the seed implementation, kept verbatim as the
  equivalence oracle: fresh full-width encryptions, square-and-multiply
  scalar exponentiation, (lambda, mu) decryption.
- **fast** -- the same mathematics computed faster: CRT wherever the
  factorisation is known (server decryption and server-side encryptions),
  fixed-base windowed exponentiation for the per-user scalar powers, and
  offline randomizer pools so online encryption is two multiplications.
  RNG draws happen in the reference order, so under a seeded RNG the two
  backends produce bit-identical ciphertexts.
"""

from __future__ import annotations

import random
import secrets

import numpy as np

from repro.crypto.blinding import BlindingFactory
from repro.crypto.dh import DHGroup, DHKeypair, decrypt_with_key, derive_shared_key, encrypt_with_key
from repro.crypto.encoding import encode_scalar, encode_vector, lcm_up_to
from repro.crypto.fastexp import FixedBaseExp, worthwhile
from repro.crypto.masking import PairwiseMasker
from repro.crypto.paillier import (
    PaillierCiphertext,
    PaillierKeypair,
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_paillier_keypair,
)
from repro.crypto.pool import RandomizerPool

CRYPTO_BACKENDS = ("reference", "fast")


def _check_backend(crypto_backend: str) -> str:
    if crypto_backend not in CRYPTO_BACKENDS:
        raise ValueError(
            f"unknown crypto_backend {crypto_backend!r}; choose from {CRYPTO_BACKENDS}"
        )
    return crypto_backend


def run_weighted_delta_kernel(task: dict) -> list[int]:
    """The pure big-int kernel of one silo's weighted encrypted delta.

    Everything RNG- or key-dependent (pool draws, masks, blinds, encoding)
    was already resolved into plain integers by
    :meth:`SiloParty.weighted_delta_task`, so this function is a top-level,
    picklable unit of work -- exactly what the runner ships to
    ``ProcessPoolExecutor`` workers for across-silo parallelism.

    Per user it raises the user's encrypted inverse to d scalar exponents
    (fixed-base windowed when the batch amortises the table, plain ``pow``
    otherwise) and multiplies into the per-coordinate accumulators; the
    result equals the reference backend's ciphertext vector bit for bit.
    """
    n = task["n"]
    n2 = n * n
    d = task["d"]
    exp_bits = n.bit_length()
    totals = list(task["zero_values"])
    for base, scalars in task["user_terms"]:
        if worthwhile(exp_bits, d):
            fb = FixedBaseExp(base, n2, exp_bits, expected_exps=d)
            for j in range(d):
                s = scalars[j]
                if s:
                    totals[j] = totals[j] * fb.pow(s) % n2
        else:
            for j in range(d):
                s = scalars[j]
                if s:
                    totals[j] = totals[j] * pow(base, s, n2) % n2
    for j, a in enumerate(task["additive"]):
        totals[j] = totals[j] * ((1 + a * n) % n2) % n2
    return totals


class SiloParty:
    """One silo: holds per-user record counts and per-round model deltas."""

    def __init__(
        self,
        silo_id: int,
        user_counts: np.ndarray,
        n_max: int,
        dh_group: DHGroup,
        rng: random.Random | None = None,
        crypto_backend: str = "fast",
    ):
        """
        Args:
            silo_id: index in 0..|S|-1.
            user_counts: n[s, u] for this silo, length |U|.
            n_max: public upper bound on records per user (defines C_LCM).
            dh_group: shared DH group parameters.
            rng: deterministic randomness for tests (None = secrets).
            crypto_backend: "fast" (pools + fixed-base exponentiation) or
                "reference" (the seed implementation, the equivalence
                oracle).  Both produce identical ciphertexts under a
                seeded RNG.
        """
        self.crypto_backend = _check_backend(crypto_backend)
        self.silo_id = silo_id
        self.user_counts = np.asarray(user_counts, dtype=np.int64)
        if np.any(self.user_counts < 0):
            raise ValueError("record counts must be non-negative")
        if int(self.user_counts.max(initial=0)) > n_max:
            raise ValueError("a user exceeds N_max; raise n_max")
        self.n_users = len(self.user_counts)
        self.n_max = n_max
        self.c_lcm = lcm_up_to(n_max)
        self.rng = rng
        # Setup state, populated by the steps below.
        self.dh_keypair: DHKeypair = dh_group.keypair(rng=rng)
        self._peer_public: dict[int, int] = {}
        self.pair_keys: dict[int, bytes] = {}
        self.shared_seed: bytes | None = None
        self.paillier_pk: PaillierPublicKey | None = None
        self.blinding: BlindingFactory | None = None
        self.masker: PairwiseMasker | None = None
        self.pool: RandomizerPool | None = None

    # -- Setup steps --------------------------------------------------------

    def dh_public(self) -> int:
        """Step 1(a): publish this silo's DH public key."""
        return self.dh_keypair.public

    def receive_dh_publics(self, publics: dict[int, int]) -> None:
        """Step 1(b): derive pairwise shared keys with every other silo."""
        for peer, public in publics.items():
            if peer == self.silo_id:
                continue
            secret = self.dh_keypair.shared_secret(public)
            self.pair_keys[peer] = derive_shared_key(secret, "secure-agg")

    def receive_paillier_key(self, pk: PaillierPublicKey) -> None:
        """Step 1(a): store the server's Paillier public key."""
        self.paillier_pk = pk
        self.masker = PairwiseMasker(self.silo_id, self.pair_keys, pk.n)
        if self.crypto_backend == "fast":
            # Silos do not know the factorisation, so no CRT context here.
            self.pool = RandomizerPool(pk, rng=self.rng)

    def generate_seed_ciphertexts(self, peers: list[int]) -> dict[int, bytes]:
        """Step 1(c), silo 0 only: encrypt a fresh seed R for every peer."""
        if self.silo_id != 0:
            raise ValueError("only silo 0 distributes the shared seed")
        if self.rng is not None:
            seed = self.rng.randbytes(32)
        else:
            seed = secrets.token_bytes(32)
        self.shared_seed = seed
        out = {}
        for peer in peers:
            if peer == 0:
                continue
            key = derive_shared_key(
                self.dh_keypair.shared_secret(self._peer_public[peer]), "seed-transport"
            )
            out[peer] = encrypt_with_key(key, seed)
        return out

    def receive_seed_ciphertext(self, ciphertext: bytes) -> None:
        """Step 1(c): decrypt the shared seed R from silo 0."""
        key = derive_shared_key(
            self.dh_keypair.shared_secret(self._peer_public[0]), "seed-transport"
        )
        self.shared_seed = decrypt_with_key(key, ciphertext)

    def remember_peer_publics(self, publics: dict[int, int]) -> None:
        """Store raw peer DH publics (needed for the seed-transport KDF)."""
        self._peer_public = dict(publics)

    def blinded_masked_histogram(self) -> list[int]:
        """Steps 1(d)-(e): doubly blinded histogram B'(n_su) for all users.

        Multiplicative blind r_u (shared seed) hides counts from the server;
        pairwise additive masks hide this silo's individual contribution so
        the server only learns the blinded *totals* B(N_u).
        """
        pk = self._require_setup()
        n = pk.n
        if self.blinding is None:
            self.blinding = BlindingFactory(self.shared_seed, n)
        assert self.masker is not None
        masks = self.masker.mask_vector(self.n_users, context="histogram")
        out = []
        for u in range(self.n_users):
            blinded = self.blinding.blind(u, int(self.user_counts[u]))
            out.append((blinded + masks[u]) % n)
        return out

    # -- Weighting round steps ----------------------------------------------

    def weighted_encrypted_delta(
        self,
        encrypted_inverses: list[PaillierCiphertext],
        clipped_deltas: dict[int, np.ndarray],
        noise: np.ndarray,
        round_no: int,
        precision: float,
    ) -> list[PaillierCiphertext]:
        """Step 2(b)-(c): the silo's masked encrypted weighted delta vector.

        For each user u with records here and each coordinate j::

            Enc(delta_s[j]) += Enc(B_inv(N_u)) * (Encode(delta_su[j]) * n_su * r_u * C_LCM)

        which decrypts to ``Encode(delta_su[j]) * n_su * C_LCM / N_u`` --
        the Eq. (3) weight times the delta, scaled by C_LCM.  The encoded
        noise (times C_LCM) and the per-round secure-aggregation masks are
        added as homomorphic scalars.

        With the fast backend this delegates to
        :func:`run_weighted_delta_kernel` (pooled ``Enc(0)`` seeds,
        fixed-base exponentiation); the ciphertexts are bit-identical to
        the reference loop below under a seeded RNG.
        """
        pk = self._require_setup()
        assert self.blinding is not None and self.masker is not None
        if self.crypto_backend == "fast":
            task = self.weighted_delta_task(
                encrypted_inverses, clipped_deltas, noise, round_no, precision
            )
            return [PaillierCiphertext(v, pk) for v in run_weighted_delta_kernel(task)]
        n = pk.n
        d = len(noise)
        # Start from fresh encryptions of zero so per-silo ciphertexts are
        # semantically secure even before mask addition.
        rng = self.rng
        totals = [pk.encrypt(0, rng=rng) for _ in range(d)]

        for user, delta in clipped_deltas.items():
            n_su = int(self.user_counts[user])
            if n_su == 0:
                raise ValueError(f"silo {self.silo_id} has no records of user {user}")
            if len(delta) != d:
                raise ValueError("delta dimension mismatch")
            r_u = self.blinding.blind_for_user(user)
            factor = n_su * r_u % n * self.c_lcm % n
            enc_inv = encrypted_inverses[user]
            for j in range(d):
                scalar = encode_scalar(float(delta[j]), precision, n) * factor % n
                totals[j] = totals[j] + enc_inv * scalar

        masks = self.masker.mask_vector(d, context=f"delta-round-{round_no}")
        for j in range(d):
            z = encode_scalar(float(noise[j]), precision, n) * self.c_lcm % n
            totals[j] = pk.add_scalar(totals[j], (z + masks[j]) % n)
        return totals

    def weighted_delta_task(
        self,
        encrypted_inverses: list[PaillierCiphertext],
        clipped_deltas: dict[int, np.ndarray],
        noise: np.ndarray,
        round_no: int,
        precision: float,
    ) -> dict:
        """Resolve one round's silo computation into a picklable kernel task.

        Fast backend only.  Draws the d pooled ``Enc(0)`` seeds *first*
        (matching the reference backend's RNG order), then encodes every
        user's delta vector in one vectorised pass and attaches the
        per-round masks and encoded noise.  The returned dict feeds
        :func:`run_weighted_delta_kernel` -- inline, or in a worker process
        when the runner parallelises across silos.
        """
        pk = self._require_setup()
        assert self.blinding is not None and self.masker is not None
        if self.pool is None:
            raise RuntimeError("weighted_delta_task requires the fast backend")
        n = pk.n
        d = len(noise)
        zero_values = [self.pool.take() for _ in range(d)]
        user_terms = []
        for user, delta in clipped_deltas.items():
            n_su = int(self.user_counts[user])
            if n_su == 0:
                raise ValueError(f"silo {self.silo_id} has no records of user {user}")
            if len(delta) != d:
                raise ValueError("delta dimension mismatch")
            r_u = self.blinding.blind_for_user(user)
            factor = n_su * r_u % n * self.c_lcm % n
            encoded = encode_vector(delta, precision, n)
            user_terms.append(
                (encrypted_inverses[user].value, [e * factor % n for e in encoded])
            )
        masks = self.masker.mask_vector(d, context=f"delta-round-{round_no}")
        encoded_noise = encode_vector(noise, precision, n)
        additive = [
            (z * self.c_lcm + mask) % n for z, mask in zip(encoded_noise, masks)
        ]
        return {
            "n": n,
            "d": d,
            "zero_values": zero_values,
            "user_terms": user_terms,
            "additive": additive,
        }

    def prepare_offline(self, count: int) -> None:
        """Pregenerate ``count`` randomizers (the enhanced protocol's
        offline phase); online encryption then costs two multiplications."""
        self._require_setup()
        if self.pool is None:
            raise RuntimeError("offline preparation requires the fast backend")
        self.pool.refill(count)

    def _require_setup(self) -> PaillierPublicKey:
        if self.paillier_pk is None:
            raise RuntimeError("setup incomplete: no Paillier key")
        if self.shared_seed is None:
            raise RuntimeError("setup incomplete: no shared seed")
        return self.paillier_pk


class ServerParty:
    """The aggregation server: generates keys, inverts blinded histograms,
    distributes encrypted weights, and decrypts only aggregated sums."""

    def __init__(
        self,
        n_users: int,
        paillier_bits: int = 512,
        rng: random.Random | None = None,
        crypto_backend: str = "fast",
    ):
        self.crypto_backend = _check_backend(crypto_backend)
        self.n_users = n_users
        self.rng = rng
        # The keypair is identical across backends (same RNG draws); the
        # fast backend additionally retains the factorisation for CRT
        # decryption and CRT-split server-side encryptions.
        self.keypair: PaillierKeypair = generate_paillier_keypair(
            paillier_bits, rng=rng, with_crt=self.crypto_backend == "fast"
        )
        self.pool: RandomizerPool | None = None
        if self.crypto_backend == "fast":
            self.pool = RandomizerPool(
                self.public_key, crt=self.keypair.private_key.crt, rng=rng
            )
        self.blinded_totals: list[int] | None = None
        self.blinded_inverses: list[int] | None = None

    @property
    def public_key(self) -> PaillierPublicKey:
        return self.keypair.public_key

    @property
    def _private_key(self) -> PaillierPrivateKey:
        return self.keypair.private_key

    # -- Setup steps ----------------------------------------------------------

    def aggregate_histograms(self, masked_histograms: list[list[int]]) -> None:
        """Step 1(e): sum doubly blinded histograms; masks cancel, leaving
        B(N_u) = r_u * N_u mod n.

        The per-user sums run as one numpy object-array reduction over the
        (|S|, |U|) stack (big ints exceed any fixed-width dtype) with a
        single modular-reduction pass at the end.
        """
        n = self.public_key.n
        for hist in masked_histograms:
            if len(hist) != self.n_users:
                raise ValueError("histogram length mismatch")
        if not masked_histograms:
            self.blinded_totals = [0] * self.n_users
            return
        stacked = np.array(masked_histograms, dtype=object)
        self.blinded_totals = [int(total) % n for total in stacked.sum(axis=0)]

    def invert_blinded_totals(self) -> None:
        """Step 1(f): B_inv(N_u) = B(N_u)^-1 over F_n (ext. Euclid).

        Users with zero records everywhere have B(N_u) = 0 which has no
        inverse; their pseudo-inverse is set to 0 so they simply never
        contribute (their scalar multiplier is also 0).
        """
        if self.blinded_totals is None:
            raise RuntimeError("aggregate_histograms must run first")
        n = self.public_key.n
        inverses = []
        for value in self.blinded_totals:
            inverses.append(0 if value == 0 else pow(value, -1, n))
        self.blinded_inverses = inverses

    # -- Weighting round steps -------------------------------------------------

    def encrypted_inverses(
        self, sampled_users: np.ndarray | None = None
    ) -> list[PaillierCiphertext]:
        """Step 2(a): Paillier-encrypt B_inv(N_u) for broadcast.

        With user-level sub-sampling, non-sampled users get Enc(0): their
        weighted contributions vanish identically, exactly as if they had
        not participated (Theorem 4 discussion).
        """
        if self.blinded_inverses is None:
            raise RuntimeError("invert_blinded_totals must run first")
        include = np.ones(self.n_users, dtype=bool)
        if sampled_users is not None:
            include[:] = False
            include[np.asarray(sampled_users, dtype=np.int64)] = True
        out = []
        for u in range(self.n_users):
            value = self.blinded_inverses[u] if include[u] else 0
            out.append(self.encrypt_value(value))
        return out

    def encrypt_value(self, value: int) -> PaillierCiphertext:
        """One Paillier encryption under this server's backend.

        Fast backend: pooled/CRT-split blinding term (the randomizer is
        drawn from the same RNG stream, so the ciphertext is bit-identical
        to the reference backend's under a seeded RNG).  Used for the
        encrypted inverses and for the OT slot messages (real and dummy).
        """
        if self.pool is not None:
            return self.pool.encrypt(value)
        return self.public_key.encrypt(value, rng=self.rng)

    def prepare_offline(self, count: int) -> None:
        """Pregenerate ``count`` randomizers (offline phase, fast backend)."""
        if self.pool is None:
            raise RuntimeError("offline preparation requires the fast backend")
        self.pool.refill(count)

    def aggregate_and_decrypt(
        self,
        silo_ciphertexts: list[list[PaillierCiphertext]],
        precision: float,
        c_lcm: int,
    ) -> np.ndarray:
        """Step 2(c): homomorphically sum silo vectors, decrypt, decode.

        The pairwise masks cancel in the ciphertext sum; decryption yields
        ``sum_su Encode(delta_su) * n_su * C_LCM / N_u + sum_s Encode(z_s) * C_LCM``
        which decodes (signed, /C_LCM, *precision) to the weighted noisy
        aggregate of ULDP-AVG-w.
        """
        if not silo_ciphertexts:
            raise ValueError("need at least one silo contribution")
        d = len(silo_ciphertexts[0])
        pk = self.public_key
        totals = silo_ciphertexts[0]
        for vec in silo_ciphertexts[1:]:
            if len(vec) != d:
                raise ValueError("ciphertext vector length mismatch")
            totals = [pk.add(a, b) for a, b in zip(totals, vec)]
        out = np.empty(d)
        for j in range(d):
            signed = self._private_key.decrypt_signed(totals[j])
            out[j] = (signed / c_lcm) * precision
        return out
