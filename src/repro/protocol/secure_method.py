"""ULDP-AVG-w with aggregation through the real cryptographic protocol.

:class:`SecureUldpAvg` is a drop-in replacement for
``UldpAvg(weighting="proportional")`` whose per-round aggregation runs
Protocol 1 end to end (Paillier, blinding, secure aggregation) instead of
the plaintext simulation.  Training results agree with the plaintext method
up to the fixed-point precision P (Theorem 4); the cost is the protocol
overhead measured in Figures 10-11.

With ``user_sample_rate`` set, the *server* performs the Poisson sampling
and silos never learn the outcome (weights of unsampled users are Enc(0)) --
the paper's default visibility model.  ``private_subsampling_slots`` enables
the Section 4.1 OT extension instead, hiding the outcome from the server as
well.
"""

from __future__ import annotations

import numpy as np

from repro.compress import CompressionSpec, scatter
from repro.core.methods.uldp_avg import UldpAvg
from repro.crypto.secagg import (
    MaskedAggregationProtocol,
    encode_weighted_payload,
    weight_numerators,
)
from repro.protocol.oblivious import PrivateSubsampler
from repro.protocol.runner import PrivateWeightingProtocol


class SecureUldpAvg(UldpAvg):
    """ULDP-AVG-w whose aggregation is the real Protocol 1.

    The cryptographic protocols encrypt (or mask) each user's clipped
    delta individually, so this subclass keeps the materialized per-user
    contribution path instead of the plaintext streaming aggregation
    (``streaming_aggregation = False``).

    ``private_subsampling_slots = P`` enables OT-based user-level
    sub-sampling at rate q = 1/P where *neither the server nor the silos*
    learn the per-round outcome (mutually exclusive with
    ``user_sample_rate``, where the server performs and knows the sampling).

    ``crypto_backend`` selects the protocol's cryptographic implementation:
    "fast" (default: CRT decryption, fixed-base exponentiation, offline
    randomizer pools, across-silo process parallelism via
    ``protocol_workers``) or "reference" (the seed implementation).  Both
    produce identical training histories under a seeded protocol RNG.
    ``"masked"`` replaces Protocol 1's Paillier aggregation with
    Bonawitz-style pairwise-mask secure aggregation
    (:class:`repro.crypto.secagg.MaskedAggregationProtocol`): orders of
    magnitude faster, ``mask_bits // 8`` uplink bytes per coordinate
    instead of a Paillier ciphertext, and -- uniquely among the secure
    backends -- it accepts :class:`~repro.core.weighting.RoundParticipation`
    with silo dropout (unmatched masks are recovered from revealed
    per-round keys).  The masked path follows the plaintext Algorithm 4
    visibility model (silos see the server's zeroed sampling weights), so
    it is bit-identical to the Paillier backends under full participation
    and matches the plaintext :class:`UldpAvg` under any participation
    pattern; it does not support the OT sub-sampling extension.

    ``compression`` admits only ``sparsify="randk"`` (or the identity):
    every silo restricts its encrypted round to the *same* random support
    derived from the compressor's shared stream, so the pairwise masks
    still cancel and -- because the support is data-independent -- the
    unsent coordinates release nothing about the data.  Top-k is rejected
    (a data-dependent support chosen *before* noise would itself leak, and
    per-silo supports would desynchronise the masking); quantization is
    rejected (Paillier ciphertexts have fixed width -- shrinking the
    plaintext saves nothing); error feedback and downlink compression are
    rejected (out of scope for the encrypted path).
    """

    name = "ULDP-AVG-w (secure)"
    #: Protocol 1 consumes per-user contribution dicts (each user's delta
    #: is encrypted/masked individually), so the streamed shard-partial
    #: path cannot apply.
    streaming_aggregation = False

    def __init__(
        self,
        clip: float = 1.0,
        noise_multiplier: float = 5.0,
        global_lr: float | None = None,
        local_lr: float = 0.05,
        local_epochs: int = 2,
        user_sample_rate: float | None = None,
        batch_size: int | None = None,
        n_max: int = 64,
        paillier_bits: int = 512,
        precision: float = 1e-10,
        protocol_seed: int | None = 0,
        private_subsampling_slots: int | None = None,
        engine: str = "vectorized",
        crypto_backend: str = "fast",
        protocol_workers: int | None = None,
        compression: CompressionSpec | None = None,
        mask_bits: int = 256,
        min_survivors: int = 1,
    ):
        if min_survivors < 1:
            raise ValueError("min_survivors must be at least 1")
        if crypto_backend == "masked" and private_subsampling_slots is not None:
            raise ValueError(
                "the OT sub-sampling extension is Paillier-specific "
                "(Enc(0) dummy slots); use user_sample_rate with the "
                "masked backend"
            )
        if private_subsampling_slots is not None:
            if user_sample_rate is not None:
                raise ValueError(
                    "use either server-side user_sample_rate or OT-based "
                    "private_subsampling_slots, not both"
                )
            if private_subsampling_slots < 2:
                raise ValueError("need at least two OT slots")
            # The OT extension realises Poisson-style sampling at q = 1/P;
            # the accountant sees exactly that rate.
            user_sample_rate = 1.0 / private_subsampling_slots
        super().__init__(
            clip=clip,
            noise_multiplier=noise_multiplier,
            global_lr=global_lr,
            local_lr=local_lr,
            local_epochs=local_epochs,
            weighting="proportional",
            user_sample_rate=user_sample_rate,
            batch_size=batch_size,
            engine=engine,
            compression=compression,
        )
        self.n_max = n_max
        self.paillier_bits = paillier_bits
        self.precision = precision
        self.protocol_seed = protocol_seed
        self.private_subsampling_slots = private_subsampling_slots
        self.crypto_backend = crypto_backend
        self.protocol_workers = protocol_workers
        self.mask_bits = mask_bits
        #: Masked-backend survivor quorum: a dropout round with fewer than
        #: this many surviving silos raises
        #: :class:`repro.core.weighting.QuorumError` instead of
        #: aggregating (see docs/protocol_performance.md on why a server
        #: faking dropouts to shrink the survivor set is worth refusing).
        self.min_survivors = min_survivors
        self.subsampler: PrivateSubsampler | None = None
        self.protocol: PrivateWeightingProtocol | None = None
        self.masked_protocol: MaskedAggregationProtocol | None = None
        self._histogram: np.ndarray | None = None

    @property
    def display_name(self) -> str:
        return self.name

    @staticmethod
    def _validate_compression(spec: CompressionSpec | None) -> None:
        """Reject specs the encrypted path cannot honour (see class doc)."""
        if spec is None or spec.is_identity:
            return
        if spec.sparsify != "randk":
            raise ValueError(
                "the secure protocol admits only sparsify='randk': the "
                "support must be data-independent (it is chosen before "
                "noise) and shared by every silo (mask cancellation)"
            )
        if spec.quantize_bits is not None:
            raise ValueError(
                "quantization does not shrink fixed-width Paillier "
                "ciphertexts; use quantize_bits=None with the secure path"
            )
        if spec.error_feedback or spec.downlink:
            raise ValueError(
                "error feedback and downlink compression are not "
                "implemented for the secure path"
            )

    def prepare(self, fed, model, rng, compression=None, engine=None) -> None:
        effective = compression if compression is not None else self.compression
        self._validate_compression(effective)
        super().prepare(fed, model, rng, compression=compression, engine=engine)
        n_max = max(self.n_max, int(fed.user_totals().max(initial=1)))
        if self.crypto_backend == "masked":
            self.masked_protocol = MaskedAggregationProtocol(
                fed.n_silos,
                mask_bits=self.mask_bits,
                precision=self.precision,
                n_max=n_max,
                seed=self.protocol_seed,
            )
            self.masked_protocol.run_setup()
            self._histogram = fed.histogram()
            return
        self.protocol = PrivateWeightingProtocol(
            fed.histogram(),
            n_max=n_max,
            paillier_bits=self.paillier_bits,
            precision=self.precision,
            seed=self.protocol_seed,
            crypto_backend=self.crypto_backend,
            workers=self.protocol_workers,
        )
        self.protocol.run_setup()
        if self.private_subsampling_slots is not None:
            seed = self.protocol.silos[0].shared_seed
            assert seed is not None
            self.subsampler = PrivateSubsampler(seed, self.private_subsampling_slots)

    def round(self, t, params, participation=None):
        """Protocol 1 rounds require the full roster; masked rounds do not.

        The Paillier backends fix the encrypted per-user weights at setup,
        so silo dropout would desynchronise the blinding-mask cancellation.
        The pairwise-mask backend recovers unmatched masks from revealed
        per-round keys, so it runs any
        :class:`~repro.core.weighting.RoundParticipation` the plaintext
        method accepts.
        """
        if participation is not None and self.crypto_backend != "masked":
            raise NotImplementedError(
                "the Paillier crypto backends ('reference', 'fast') do not "
                "support partial participation: per-user weights are fixed "
                "inside the encrypted setup and silo dropout would "
                "desynchronise the blinding-mask cancellation; use "
                "crypto_backend='masked' (pairwise-mask secure aggregation "
                "with dropout recovery) for secure rounds under dropout"
            )
        return super().round(t, params, participation)

    def _compute_contributions(self, params, round_weights):
        """Silos must not learn the sub-sampling outcome (Protocol 1).

        Unlike the plaintext Algorithm 4 -- where the server distributes
        zeroed weights and silos skip unsampled users -- here every silo
        trains every present user; unsampled users are cancelled inside the
        encrypted domain by Enc(0) weights.  We therefore hand the parent
        the *unsampled* weight matrix.

        The masked backend keeps the plaintext visibility model instead
        (zeroed weights reach the silos), which is what lets it track the
        plaintext method bit for bit under dropout -- and, because
        zero-weight users contribute exactly zero either way, its
        aggregate still matches the Paillier backends.
        """
        if self.crypto_backend == "masked":
            return super()._compute_contributions(params, round_weights)
        assert self.weights is not None
        return super()._compute_contributions(params, self.weights)

    def _aggregate(self, t, contributions, noises, round_weights):
        """Protocol 1 replaces the plaintext weighted sum.

        With server-side sampling, ``round_weights`` encodes the server's
        decision (zeroed columns) and the protocol zeroes the encrypted
        weights.  With the OT extension, the sampled set is implicit: the
        PRG-derived slot choice selects real weights or Enc(0) dummies and
        no party learns which.

        With ``sparsify="randk"`` compression, the round first restricts
        every delta and noise vector to one shared random support (drawn
        per round from the compressor's stream -- in deployment, from the
        silos' shared seed R, so indices never cross the wire): Protocol 1
        then encrypts, masks, sums, and decrypts only the k surviving
        coordinates, and the decoded sub-aggregate is scattered back into
        the d-dimensional update with exact zeros elsewhere.  The uplink
        shrinks from ``d`` to ``k`` ciphertexts per silo.
        """
        dim = len(noises[0])
        support = None
        comp = self.compressor
        if comp is not None and comp.spec.sparsify == "randk":
            support = comp.draw_support(dim)
            contributions = [
                {user: delta[support] for user, delta in per_silo.items()}
                for per_silo in contributions
            ]
            noises = [noise[support] for noise in noises]
        if self.crypto_backend == "masked":
            sub_aggregate = self._aggregate_masked(contributions, noises, round_weights)
            if support is None:
                return sub_aggregate
            return scatter(support, sub_aggregate, dim)
        assert self.protocol is not None
        if self.subsampler is not None:
            sub_aggregate = self.protocol.run_round_ot_sampling(
                contributions, noises, self.subsampler
            )
        else:
            sampled = np.where(round_weights.sum(axis=0) > 0)[0]
            sub_aggregate = self.protocol.run_round(
                contributions, noises, sampled_users=sampled
            )
        self._round_uplink_bytes = (
            self.fed.n_silos * len(noises[0]) * self.protocol.ciphertext_bytes
        )
        if support is None:
            return sub_aggregate
        return scatter(support, sub_aggregate, dim)

    def _aggregate_masked(self, contributions, noises, round_weights):
        """Masked secure aggregation over the (possibly partial) roster.

        Each active silo encodes ``sum_u Encode(delta_su) * (n_su * C_LCM
        / N_u) + Encode(z_s) * C_LCM`` into the mask field and uploads the
        pairwise-masked vector; dropped silos upload nothing and their
        unmatched masks are recovered inside the protocol.  The decoded
        sum is the identical integer arithmetic the Paillier path
        decrypts, so both secure backends agree bit for bit under full
        participation.
        """
        proto = self.masked_protocol
        assert proto is not None
        active = self._active_silo_mask
        fed, _, _ = self._require_prepared()
        survivors = int(active.sum()) if active is not None else len(contributions)
        if survivors < self.min_survivors:
            from repro.core.weighting import QuorumError

            raise QuorumError(
                f"masked secure aggregation has {survivors} surviving "
                f"silo(s) this round, below min_survivors="
                f"{self.min_survivors}; refusing to aggregate over so few "
                "silos (see docs/protocol_performance.md)"
            )
        numerators = weight_numerators(round_weights, self._histogram, proto.c_lcm)
        max_abs = max(
            (float(np.abs(v).max(initial=0.0)) for v in noises),
            default=0.0,
        )
        max_abs = max(
            max_abs,
            max(
                (
                    float(np.abs(delta).max(initial=0.0))
                    for per_silo in contributions
                    for delta in per_silo.values()
                ),
                default=0.0,
            ),
        )
        proto.check_round_magnitude(
            max_abs, num_terms=fed.n_silos * (fed.n_users + 1)
        )
        vectors: list[list[int] | None] = []
        noise_index = 0
        for s, per_user in enumerate(contributions):
            if active is not None and not active[s]:
                vectors.append(None)  # dropped silo: no payload, no noise slot
                continue
            noise = noises[noise_index]
            noise_index += 1
            vectors.append(
                encode_weighted_payload(
                    per_user,
                    {user: numerators[s, user] for user in per_user},
                    noise,
                    self.precision,
                    proto.c_lcm,
                    proto.modulus,
                )
            )
        totals = proto.run_round(vectors)
        n_active = sum(1 for v in vectors if v is not None)
        self._round_uplink_bytes = n_active * len(noises[0]) * proto.mask_bytes
        return proto.decode_aggregate(totals)

    def uplink_payload_bytes(self) -> int:
        """One silo's uplink in *wire* bytes (not plaintext floats).

        A secure round ships one Paillier ciphertext (Paillier backends)
        or one ``mask_bits``-bit field element (masked backend) per
        surviving coordinate, so bandwidth models must budget
        ``k * |Z_{n^2}|`` resp. ``k * mask_bits/8`` bytes.
        """
        _, model, _ = self._require_prepared()
        dim = model.num_params
        comp = self.compressor
        if comp is not None and comp.spec.sparsify == "randk":
            dim = comp.spec.keep_count(dim)
        if self.crypto_backend == "masked":
            assert self.masked_protocol is not None
            return dim * self.masked_protocol.mask_bytes
        assert self.protocol is not None
        return dim * self.protocol.ciphertext_bytes

    def timing_report(self) -> dict[str, float]:
        """Per-phase wall-clock totals (for the Fig. 10/11 benches)."""
        if self.crypto_backend == "masked":
            assert self.masked_protocol is not None
            return self.masked_protocol.timer.report()
        assert self.protocol is not None
        return self.protocol.timer.report()

    # -- checkpoint serialisation -------------------------------------------

    def protocol_state_dict(self) -> dict | None:
        """Dynamic protocol state for checkpointing (key material rebuilds
        deterministically from ``protocol_seed`` at prepare time)."""
        if self.masked_protocol is not None:
            return {"backend": "masked", **self.masked_protocol.state_dict()}
        return None

    def load_protocol_state(self, state: dict) -> None:
        if state.get("backend") != "masked" or self.masked_protocol is None:
            raise ValueError(
                "checkpoint and rebuilt method disagree about the crypto "
                "backend; was the spec's crypto section changed?"
            )
        self.masked_protocol.load_state(state)
