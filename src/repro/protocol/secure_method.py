"""ULDP-AVG-w with aggregation through the real cryptographic protocol.

:class:`SecureUldpAvg` is a drop-in replacement for
``UldpAvg(weighting="proportional")`` whose per-round aggregation runs
Protocol 1 end to end (Paillier, blinding, secure aggregation) instead of
the plaintext simulation.  Training results agree with the plaintext method
up to the fixed-point precision P (Theorem 4); the cost is the protocol
overhead measured in Figures 10-11.

With ``user_sample_rate`` set, the *server* performs the Poisson sampling
and silos never learn the outcome (weights of unsampled users are Enc(0)) --
the paper's default visibility model.  ``private_subsampling_slots`` enables
the Section 4.1 OT extension instead, hiding the outcome from the server as
well.
"""

from __future__ import annotations

import numpy as np

from repro.compress import CompressionSpec, scatter
from repro.core.methods.uldp_avg import UldpAvg
from repro.protocol.oblivious import PrivateSubsampler
from repro.protocol.runner import PrivateWeightingProtocol


class SecureUldpAvg(UldpAvg):
    """ULDP-AVG-w whose aggregation is the real Protocol 1.

    ``private_subsampling_slots = P`` enables OT-based user-level
    sub-sampling at rate q = 1/P where *neither the server nor the silos*
    learn the per-round outcome (mutually exclusive with
    ``user_sample_rate``, where the server performs and knows the sampling).

    ``crypto_backend`` selects the protocol's cryptographic implementation:
    "fast" (default: CRT decryption, fixed-base exponentiation, offline
    randomizer pools, across-silo process parallelism via
    ``protocol_workers``) or "reference" (the seed implementation).  Both
    produce identical training histories under a seeded protocol RNG.

    ``compression`` admits only ``sparsify="randk"`` (or the identity):
    every silo restricts its encrypted round to the *same* random support
    derived from the compressor's shared stream, so the pairwise masks
    still cancel and -- because the support is data-independent -- the
    unsent coordinates release nothing about the data.  Top-k is rejected
    (a data-dependent support chosen *before* noise would itself leak, and
    per-silo supports would desynchronise the masking); quantization is
    rejected (Paillier ciphertexts have fixed width -- shrinking the
    plaintext saves nothing); error feedback and downlink compression are
    rejected (out of scope for the encrypted path).
    """

    name = "ULDP-AVG-w (secure)"

    def __init__(
        self,
        clip: float = 1.0,
        noise_multiplier: float = 5.0,
        global_lr: float | None = None,
        local_lr: float = 0.05,
        local_epochs: int = 2,
        user_sample_rate: float | None = None,
        batch_size: int | None = None,
        n_max: int = 64,
        paillier_bits: int = 512,
        precision: float = 1e-10,
        protocol_seed: int | None = 0,
        private_subsampling_slots: int | None = None,
        engine: str = "vectorized",
        crypto_backend: str = "fast",
        protocol_workers: int | None = None,
        compression: CompressionSpec | None = None,
    ):
        if private_subsampling_slots is not None:
            if user_sample_rate is not None:
                raise ValueError(
                    "use either server-side user_sample_rate or OT-based "
                    "private_subsampling_slots, not both"
                )
            if private_subsampling_slots < 2:
                raise ValueError("need at least two OT slots")
            # The OT extension realises Poisson-style sampling at q = 1/P;
            # the accountant sees exactly that rate.
            user_sample_rate = 1.0 / private_subsampling_slots
        super().__init__(
            clip=clip,
            noise_multiplier=noise_multiplier,
            global_lr=global_lr,
            local_lr=local_lr,
            local_epochs=local_epochs,
            weighting="proportional",
            user_sample_rate=user_sample_rate,
            batch_size=batch_size,
            engine=engine,
            compression=compression,
        )
        self.n_max = n_max
        self.paillier_bits = paillier_bits
        self.precision = precision
        self.protocol_seed = protocol_seed
        self.private_subsampling_slots = private_subsampling_slots
        self.crypto_backend = crypto_backend
        self.protocol_workers = protocol_workers
        self.subsampler: PrivateSubsampler | None = None
        self.protocol: PrivateWeightingProtocol | None = None

    @property
    def display_name(self) -> str:
        return self.name

    @staticmethod
    def _validate_compression(spec: CompressionSpec | None) -> None:
        """Reject specs the encrypted path cannot honour (see class doc)."""
        if spec is None or spec.is_identity:
            return
        if spec.sparsify != "randk":
            raise ValueError(
                "the secure protocol admits only sparsify='randk': the "
                "support must be data-independent (it is chosen before "
                "noise) and shared by every silo (mask cancellation)"
            )
        if spec.quantize_bits is not None:
            raise ValueError(
                "quantization does not shrink fixed-width Paillier "
                "ciphertexts; use quantize_bits=None with the secure path"
            )
        if spec.error_feedback or spec.downlink:
            raise ValueError(
                "error feedback and downlink compression are not "
                "implemented for the secure path"
            )

    def prepare(self, fed, model, rng, compression=None) -> None:
        effective = compression if compression is not None else self.compression
        self._validate_compression(effective)
        super().prepare(fed, model, rng, compression=compression)
        n_max = max(self.n_max, int(fed.user_totals().max(initial=1)))
        self.protocol = PrivateWeightingProtocol(
            fed.histogram(),
            n_max=n_max,
            paillier_bits=self.paillier_bits,
            precision=self.precision,
            seed=self.protocol_seed,
            crypto_backend=self.crypto_backend,
            workers=self.protocol_workers,
        )
        self.protocol.run_setup()
        if self.private_subsampling_slots is not None:
            seed = self.protocol.silos[0].shared_seed
            assert seed is not None
            self.subsampler = PrivateSubsampler(seed, self.private_subsampling_slots)

    def round(self, t, params, participation=None):
        """Protocol 1 rounds require the full roster.

        The encrypted per-user weights are fixed at setup; silo dropout
        would desynchronise the blinding-mask cancellation.  Simulate
        partial participation with the plaintext :class:`UldpAvg` instead.
        """
        if participation is not None:
            raise NotImplementedError(
                "SecureUldpAvg does not support partial participation; "
                "simulate dropout with the plaintext UldpAvg"
            )
        return super().round(t, params)

    def _compute_contributions(self, params, round_weights):
        """Silos must not learn the sub-sampling outcome (Protocol 1).

        Unlike the plaintext Algorithm 4 -- where the server distributes
        zeroed weights and silos skip unsampled users -- here every silo
        trains every present user; unsampled users are cancelled inside the
        encrypted domain by Enc(0) weights.  We therefore hand the parent
        the *unsampled* weight matrix.
        """
        assert self.weights is not None
        return super()._compute_contributions(params, self.weights)

    def _aggregate(self, t, contributions, noises, round_weights):
        """Protocol 1 replaces the plaintext weighted sum.

        With server-side sampling, ``round_weights`` encodes the server's
        decision (zeroed columns) and the protocol zeroes the encrypted
        weights.  With the OT extension, the sampled set is implicit: the
        PRG-derived slot choice selects real weights or Enc(0) dummies and
        no party learns which.

        With ``sparsify="randk"`` compression, the round first restricts
        every delta and noise vector to one shared random support (drawn
        per round from the compressor's stream -- in deployment, from the
        silos' shared seed R, so indices never cross the wire): Protocol 1
        then encrypts, masks, sums, and decrypts only the k surviving
        coordinates, and the decoded sub-aggregate is scattered back into
        the d-dimensional update with exact zeros elsewhere.  The uplink
        shrinks from ``d`` to ``k`` ciphertexts per silo.
        """
        assert self.protocol is not None
        dim = len(noises[0])
        support = None
        comp = self.compressor
        if comp is not None and comp.spec.sparsify == "randk":
            support = comp.draw_support(dim)
            contributions = [
                {user: delta[support] for user, delta in per_silo.items()}
                for per_silo in contributions
            ]
            noises = [noise[support] for noise in noises]
        if self.subsampler is not None:
            sub_aggregate = self.protocol.run_round_ot_sampling(
                contributions, noises, self.subsampler
            )
        else:
            sampled = np.where(round_weights.sum(axis=0) > 0)[0]
            sub_aggregate = self.protocol.run_round(
                contributions, noises, sampled_users=sampled
            )
        self._round_uplink_bytes = (
            self.fed.n_silos * len(noises[0]) * self.protocol.ciphertext_bytes
        )
        if support is None:
            return sub_aggregate
        return scatter(support, sub_aggregate, dim)

    def uplink_payload_bytes(self) -> int:
        """One silo's uplink in *ciphertext* bytes (not plaintext floats).

        A secure round ships one Paillier ciphertext per surviving
        coordinate, so bandwidth models must budget ``k * |Z_{n^2}|``
        bytes -- typically 8-100x the plaintext estimate the base class
        would report.
        """
        assert self.protocol is not None
        _, model, _ = self._require_prepared()
        dim = model.num_params
        comp = self.compressor
        if comp is not None and comp.spec.sparsify == "randk":
            dim = comp.spec.keep_count(dim)
        return dim * self.protocol.ciphertext_bytes

    def timing_report(self) -> dict[str, float]:
        """Per-phase wall-clock totals (for the Fig. 10/11 benches)."""
        assert self.protocol is not None
        return self.protocol.timer.report()
