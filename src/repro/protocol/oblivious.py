"""1-out-of-P oblivious transfer and private user-level sub-sampling.

Section 4.1 of the paper sketches how to hide the per-round sub-sampling
results from *both* sides: for each user the server prepares P slots -- one
holding Enc(B_inv(N_u)) and P-1 holding fresh Enc(0) -- and the silo
retrieves one slot by 1-out-of-P OT.  The server cannot tell which slot was
taken; the silo cannot tell whether it received the real weight or a dummy
(Paillier ciphertexts are semantically secure), so neither side learns the
sampling outcome.  Retrieving the real slot (probability 1/P) makes the
user participate; only probabilities of the form 1/P are representable (the
paper notes this coarseness).

The OT itself is the classic Naor-Pinkas 1-of-N construction over our DH
group with hashed-ElGamal encryption, secure against semi-honest parties:

- the sender publishes random group elements C_1..C_{P-1};
- the receiver with choice c picks a secret k and publishes
  PK_0 = g^k (if c = 0) or C_c * (g^k)^-1 (otherwise), so that the derived
  key PK_c equals g^k while the receiver knows the discrete log of no other
  PK_j (that would require dlog of C_j);
- the sender derives PK_j = C_j * PK_0^-1 for j >= 1, and sends each
  message encrypted as (g^{r_j}, H(PK_j^{r_j}) XOR m_j);
- the receiver decrypts slot c with k.

One deployment subtlety the paper leaves implicit: all silos must agree on
the *same* slot choice per user, otherwise a user would participate in some
silos only, breaking the Poisson-sampling semantics.  The silos already
share the secret seed R from the setup phase, so
:class:`PrivateSubsampler` derives the common slot choice from R (per user,
per round).  The server still learns nothing (it never sees R).
"""

from __future__ import annotations

import hashlib
import random
import secrets

from repro.crypto.dh import DHGroup


def _hash_key(element: int, context: bytes) -> bytes:
    data = element.to_bytes((element.bit_length() + 7) // 8 or 1, "big")
    return hashlib.sha256(b"np-ot|" + context + b"|" + data).digest()


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def _stream(key: bytes, length: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < length:
        out.extend(hashlib.sha256(key + counter.to_bytes(8, "big")).digest())
        counter += 1
    return bytes(out[:length])


class OTSender:
    """Naor-Pinkas 1-of-P sender (holds the P messages)."""

    def __init__(self, group: DHGroup, n_slots: int, rng: random.Random | None = None):
        if n_slots < 2:
            raise ValueError("OT needs at least two slots")
        self.group = group
        self.n_slots = n_slots
        self.rng = rng
        # Random group elements with unknown discrete log (to the receiver).
        self.commitments = [self._random_element() for _ in range(n_slots - 1)]

    def _random_element(self) -> int:
        p = self.group.prime
        if self.rng is not None:
            exp = self.rng.randrange(2, p - 2)
        else:
            exp = secrets.randbelow(p - 4) + 2
        return pow(self.group.generator, exp, p)

    def public_commitments(self) -> list[int]:
        return list(self.commitments)

    def encrypt_slots(self, receiver_pk0: int, messages: list[bytes]) -> list[tuple[int, bytes]]:
        """Encrypt each message under the derived per-slot public key."""
        if len(messages) != self.n_slots:
            raise ValueError(f"expected {self.n_slots} messages")
        if not 1 < receiver_pk0 < self.group.prime - 1:
            raise ValueError("receiver public key out of range")
        p, g = self.group.prime, self.group.generator
        pk0_inv = pow(receiver_pk0, -1, p)
        out = []
        for j, message in enumerate(messages):
            pk_j = receiver_pk0 if j == 0 else self.commitments[j - 1] * pk0_inv % p
            if self.rng is not None:
                r = self.rng.randrange(2, p - 2)
            else:
                r = secrets.randbelow(p - 4) + 2
            c1 = pow(g, r, p)
            key = _hash_key(pow(pk_j, r, p), context=j.to_bytes(4, "big"))
            out.append((c1, _xor_bytes(message, _stream(key, len(message)))))
        return out


class OTReceiver:
    """Naor-Pinkas 1-of-P receiver (retrieves exactly one slot)."""

    def __init__(
        self,
        group: DHGroup,
        commitments: list[int],
        choice: int,
        rng: random.Random | None = None,
    ):
        n_slots = len(commitments) + 1
        if not 0 <= choice < n_slots:
            raise ValueError("choice out of range")
        self.group = group
        self.choice = choice
        p, g = group.prime, group.generator
        if rng is not None:
            self.secret = rng.randrange(2, p - 2)
        else:
            self.secret = secrets.randbelow(p - 4) + 2
        gk = pow(g, self.secret, p)
        if choice == 0:
            self.pk0 = gk
        else:
            self.pk0 = commitments[choice - 1] * pow(gk, -1, p) % p

    def public_key(self) -> int:
        return self.pk0

    def decrypt_choice(self, slots: list[tuple[int, bytes]]) -> bytes:
        """Decrypt the chosen slot; other slots are computationally opaque."""
        c1, payload = slots[self.choice]
        key = _hash_key(
            pow(c1, self.secret, self.group.prime),
            context=self.choice.to_bytes(4, "big"),
        )
        return _xor_bytes(payload, _stream(key, len(payload)))


def transfer(
    group: DHGroup,
    messages: list[bytes],
    choice: int,
    rng: random.Random | None = None,
) -> bytes:
    """Run one complete 1-of-P OT in process; returns the chosen message."""
    sender = OTSender(group, len(messages), rng=rng)
    receiver = OTReceiver(group, sender.public_commitments(), choice, rng=rng)
    slots = sender.encrypt_slots(receiver.public_key(), messages)
    return receiver.decrypt_choice(slots)


class PrivateSubsampler:
    """Derives the common OT slot choices for private user-level sampling.

    All silos hold the shared seed R; the slot for (user, round) is a PRG
    output mod P, identical across silos and unpredictable to the server.
    Participation probability is 1/P (slot 0 is the real-weight slot by
    convention -- the server shuffles ciphertexts per user with its own
    randomness before the OT, so the convention leaks nothing).
    """

    def __init__(self, shared_seed: bytes, n_slots: int):
        if n_slots < 2:
            raise ValueError("need at least two slots")
        self.shared_seed = shared_seed
        self.n_slots = n_slots

    @property
    def participation_rate(self) -> float:
        return 1.0 / self.n_slots

    def slot_for(self, user: int, round_no: int) -> int:
        digest = hashlib.sha256(
            self.shared_seed
            + b"|subsample|"
            + user.to_bytes(8, "big")
            + round_no.to_bytes(8, "big")
        ).digest()
        return int.from_bytes(digest[:8], "big") % self.n_slots

    def sampled_users(self, n_users: int, round_no: int) -> list[int]:
        """Users whose slot is the real-weight slot this round."""
        return [u for u in range(n_users) if self.slot_for(u, round_no) == 0]
