"""Orchestration of Protocol 1 between in-process parties.

:class:`PrivateWeightingProtocol` wires one :class:`ServerParty` and |S|
:class:`SiloParty` objects through the setup phase (once) and the weighting
phase (every round), timing each phase for the Fig. 10-11 benchmarks and
recording the *server's view* -- every value that crosses the wire toward
the server -- so the privacy tests can assert the server never sees a raw
histogram (Theorem 5).

The orchestrator itself plays the network: values returned by one party are
handed to the other exactly as the protocol prescribes, and nothing else.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.crypto.dh import DHGroup
from repro.crypto.encoding import check_magnitude_budget, lcm_up_to
from repro.crypto.paillier import PaillierCiphertext
from repro.protocol.oblivious import OTReceiver, OTSender, PrivateSubsampler
from repro.protocol.parties import (
    ServerParty,
    SiloParty,
    run_weighted_delta_kernel,
)
from repro.obs.metrics import get_registry
from repro.protocol.timing import PhaseTimer


@dataclass
class ServerView:
    """Everything the server observes across the protocol run."""

    dh_publics: dict[int, int] = field(default_factory=dict)
    seed_ciphertexts: dict[int, bytes] = field(default_factory=dict)
    masked_histograms: list[list[int]] = field(default_factory=list)
    blinded_totals: list[int] = field(default_factory=list)
    round_ciphertexts: list[list[list[int]]] = field(default_factory=list)
    decrypted_aggregates: list[np.ndarray] = field(default_factory=list)


class PrivateWeightingProtocol:
    """End-to-end Protocol 1: private ULDP-AVG-w aggregation.

    Args:
        histogram: the true n[s, u] matrix -- each silo is constructed with
            *only its own row*; the full matrix never reaches the server.
        n_max: public bound on records per user (C_LCM = lcm(1..n_max)).
        paillier_bits: Paillier modulus size (paper: 3072; tests: smaller).
        precision: fixed-point precision P of Algorithm 5.
        seed: deterministic randomness for reproducible tests; None uses
            cryptographically secure randomness.
        crypto_backend: "fast" (CRT decryption, fixed-base exponentiation,
            offline randomizer pools, optional across-silo process
            parallelism) or "reference" (the seed implementation, kept as
            the equivalence oracle).  Under a seeded RNG both backends
            produce bit-identical ciphertexts and aggregates.
        workers: process count for the per-silo weighting step (fast
            backend only).  None = min(|S|, cpu count); 1 = in-process.
    """

    def __init__(
        self,
        histogram: np.ndarray,
        n_max: int = 64,
        paillier_bits: int = 512,
        precision: float = 1e-10,
        dh_group: DHGroup | None = None,
        seed: int | None = None,
        crypto_backend: str = "fast",
        workers: int | None = None,
    ):
        histogram = np.asarray(histogram, dtype=np.int64)
        if histogram.ndim != 2:
            raise ValueError("histogram must be (|S|, |U|)")
        if histogram.shape[0] < 2:
            raise ValueError("the protocol needs at least two silos")
        if int(histogram.sum(axis=0).max(initial=0)) > n_max:
            raise ValueError("some user exceeds N_max across silos; raise n_max")
        self.histogram = histogram
        self.n_silos, self.n_users = histogram.shape
        self.n_max = n_max
        self.c_lcm = lcm_up_to(n_max)
        self.precision = precision
        self.timer = PhaseTimer()
        self.view = ServerView()
        self.round_no = 0
        self.crypto_backend = crypto_backend
        self.workers = workers
        rng = random.Random(seed) if seed is not None else None
        self.rng = rng

        with self.timer.phase("keygen"):
            # Group selection is inside the phase: generating the test
            # group's safe prime is a one-off cost that belongs to keygen,
            # not to whatever happens to run first afterwards.
            group = dh_group if dh_group is not None else DHGroup.test_group()
            self.server = ServerParty(
                self.n_users,
                paillier_bits=paillier_bits,
                rng=rng,
                crypto_backend=crypto_backend,
            )
            self.silos = [
                SiloParty(
                    s, histogram[s], n_max, group, rng=rng, crypto_backend=crypto_backend
                )
                for s in range(self.n_silos)
            ]
        self._setup_done = False
        self._executor: ProcessPoolExecutor | None = None

    def close(self) -> None:
        """Release the worker pool (safe to call repeatedly, and on
        partially constructed instances via ``__del__``)."""
        if getattr(self, "_executor", None) is not None:
            self._executor.shutdown()
            self._executor = None

    def __del__(self):
        self.close()

    @property
    def ciphertext_bytes(self) -> int:
        """Wire size of one Paillier ciphertext (an element of Z_{n^2}).

        The unit of Protocol 1's uplink byte accounting: a round ships one
        ciphertext per coordinate per silo, so sparsifying to k surviving
        coordinates shrinks the uplink by exactly d/k.
        """
        return (self.server.public_key.n_squared.bit_length() + 7) // 8

    def _effective_workers(self) -> int:
        if self.workers is not None:
            return max(1, min(self.workers, self.n_silos))
        return max(1, min(self.n_silos, os.cpu_count() or 1))

    def _get_executor(self, workers: int) -> ProcessPoolExecutor:
        """The protocol-lifetime worker pool, created lazily on first use
        (spawning processes every round would dwarf small kernels)."""
        if self._executor is None:
            # Prefer fork only where it is safe (Linux); macOS forks crash
            # intermittently with threaded parents, hence CPython's own
            # switch of the platform default to spawn.
            mp_context = None
            if sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods():
                mp_context = multiprocessing.get_context("fork")
            self._executor = ProcessPoolExecutor(
                max_workers=workers, mp_context=mp_context
            )
        return self._executor

    def _silo_weighted_vectors(
        self,
        per_silo_inverses: list[list[PaillierCiphertext]],
        clipped_deltas: list[dict[int, np.ndarray]],
        noises: list[np.ndarray],
    ) -> list[list[PaillierCiphertext]]:
        """Step 2(b)-(c) for every silo, in parallel when it pays off.

        Each silo's weighted encryption is embarrassingly parallel; with the
        fast backend and >1 effective workers the RNG/key-dependent task
        preparation happens in-process (keeping the draw order exactly as in
        serial execution) and only the pure big-int kernels are shipped to a
        process pool, so results are bit-identical to the serial path.
        """
        workers = self._effective_workers()
        if self.crypto_backend == "fast" and workers > 1:
            tasks = [
                silo.weighted_delta_task(
                    per_silo_inverses[s],
                    clipped_deltas[s],
                    noises[s],
                    round_no=self.round_no,
                    precision=self.precision,
                )
                for s, silo in enumerate(self.silos)
            ]
            pk = self.server.public_key
            results = list(
                self._get_executor(workers).map(run_weighted_delta_kernel, tasks)
            )
            return [[PaillierCiphertext(v, pk) for v in vec] for vec in results]
        return [
            silo.weighted_encrypted_delta(
                per_silo_inverses[s],
                clipped_deltas[s],
                noises[s],
                round_no=self.round_no,
                precision=self.precision,
            )
            for s, silo in enumerate(self.silos)
        ]

    # -- Setup phase ---------------------------------------------------------

    def run_setup(self) -> None:
        """Steps 1(a)-(f): key exchange, seed transport, blinded histogram."""
        with self.timer.phase("key_exchange"):
            publics = {s.silo_id: s.dh_public() for s in self.silos}
            self.view.dh_publics = dict(publics)  # server relays these
            for silo in self.silos:
                silo.remember_peer_publics(publics)
                silo.receive_dh_publics(publics)
                silo.receive_paillier_key(self.server.public_key)

            seed_cts = self.silos[0].generate_seed_ciphertexts(list(publics))
            self.view.seed_ciphertexts = dict(seed_cts)  # relayed via server
            for peer, ct in seed_cts.items():
                self.silos[peer].receive_seed_ciphertext(ct)

        with self.timer.phase("blinded_histogram"):
            masked = [silo.blinded_masked_histogram() for silo in self.silos]
            self.view.masked_histograms = [list(h) for h in masked]
            self.server.aggregate_histograms(masked)
            assert self.server.blinded_totals is not None
            self.view.blinded_totals = list(self.server.blinded_totals)
            self.server.invert_blinded_totals()
        self._setup_done = True

    # -- Weighting phase -------------------------------------------------------

    def _check_round_inputs(
        self,
        clipped_deltas: list[dict[int, np.ndarray]],
        noises: list[np.ndarray],
    ) -> int:
        """Shape validation + Theorem 4's overflow guard; returns d.

        Both round entry points (plain and OT-sampled) must refuse inputs
        whose accumulated fixed-point magnitudes could exceed n/2 -- past
        that, signed decoding silently wraps instead of failing loudly.
        """
        if len(clipped_deltas) != self.n_silos or len(noises) != self.n_silos:
            raise ValueError("need one delta dict and noise vector per silo")
        max_abs = max(
            [float(np.abs(n).max(initial=0.0)) for n in noises]
            + [
                float(np.abs(v).max(initial=0.0))
                for per_silo in clipped_deltas
                for v in per_silo.values()
            ]
            + [1.0]
        )
        if not check_magnitude_budget(
            self.server.public_key.n, self.c_lcm, self.precision, max_abs,
            num_terms=self.n_silos * (self.n_users + 1),
        ):
            raise ValueError(
                "fixed-point magnitude budget exceeded; increase paillier_bits "
                "or precision, or decrease n_max"
            )
        return len(noises[0])

    def run_round(
        self,
        clipped_deltas: list[dict[int, np.ndarray]],
        noises: list[np.ndarray],
        sampled_users: np.ndarray | None = None,
    ) -> np.ndarray:
        """Steps 2(a)-(c) for one training round.

        Args:
            clipped_deltas: per silo, user id -> clipped (unweighted) delta.
            noises: per silo Gaussian noise vector.
            sampled_users: user ids sampled this round (None = everyone);
                the server zeroes the encrypted weights of the others.

        Returns:
            The decoded aggregate: sum over silos and users of
            ``(n_su / N_u) * delta_su`` plus the summed noise.
        """
        if not self._setup_done:
            raise RuntimeError("run_setup must be called first")
        d = self._check_round_inputs(clipped_deltas, noises)

        if self.crypto_backend == "fast":
            with self.timer.phase("offline_randomizers"):
                # The enhanced protocol's offline phase: pregenerate every
                # blinding term this round will consume.  Refill order
                # mirrors the reference backend's online draw order (server
                # first, then silos by id) so that, under a seeded RNG, the
                # two backends produce bit-identical ciphertexts.
                self.server.prepare_offline(self.n_users)
                for silo in self.silos:
                    silo.prepare_offline(d)

        with self.timer.phase("encrypt_weights"):
            enc_inverses = self.server.encrypted_inverses(sampled_users)

        with self.timer.phase("silo_weighted_encryption"):
            silo_vectors = self._silo_weighted_vectors(
                [enc_inverses] * self.n_silos, clipped_deltas, noises
            )
        self.view.round_ciphertexts.append(
            [[c.value for c in vec] for vec in silo_vectors]
        )
        get_registry().counter(
            "protocol_ciphertexts_total",
            help="Paillier ciphertexts produced by silo-weighted encryption.",
        ).inc(sum(len(vec) for vec in silo_vectors))

        with self.timer.phase("aggregate_decrypt"):
            aggregate = self.server.aggregate_and_decrypt(
                silo_vectors, self.precision, self.c_lcm
            )
        self.view.decrypted_aggregates.append(aggregate.copy())
        self.round_no += 1
        return aggregate

    # -- Private sub-sampling via 1-out-of-P OT (Section 4.1 extension) --------

    def run_round_ot_sampling(
        self,
        clipped_deltas: list[dict[int, np.ndarray]],
        noises: list[np.ndarray],
        subsampler: PrivateSubsampler,
    ) -> np.ndarray:
        """One round with OT-hidden user-level sub-sampling.

        Instead of broadcasting Enc(B_inv(N_u)) (which tells silos that
        everyone participates) or zeroed weights (which would tell silos who
        was dropped), the server prepares P slots per user -- slot 0 holds
        the real encrypted inverse, the rest hold fresh Enc(0) -- and each
        silo retrieves one slot by Naor-Pinkas 1-of-P OT:

        - the server cannot tell which slot a silo took (OT receiver
          privacy), so it does not learn the sampling outcome;
        - the silo cannot tell whether it holds the real weight or a dummy
          (Paillier semantic security), so neither does it;
        - all silos take the *same* slot, derived from their shared seed R
          (per user, per round), preserving the Poisson-per-user semantics;
          participation probability is 1/P.

        Returns the decoded aggregate over the implicitly sampled users.
        """
        if not self._setup_done:
            raise RuntimeError("run_setup must be called first")
        if self.silos[0].shared_seed != subsampler.shared_seed:
            raise ValueError("subsampler must be seeded with the silos' shared seed R")
        self._check_round_inputs(clipped_deltas, noises)

        pk = self.server.public_key
        byte_len = (pk.n_squared.bit_length() + 7) // 8
        # Per-round OT randomness comes from the protocol's RNG: seeded runs
        # stay reproducible, production runs (seed=None) fall through to the
        # OT classes' secrets-based randomness.  (Seeding from the public
        # round number, as the seed code did, would make the OT blinding
        # exponents predictable to anyone.)
        rng = self.rng
        group = self.silos[0].dh_keypair.group
        n_slots = subsampler.n_slots

        with self.timer.phase("ot_private_sampling"):
            assert self.server.blinded_inverses is not None
            per_silo_inverses: list[list[PaillierCiphertext]] = []
            for silo in self.silos:
                received: list[PaillierCiphertext] = []
                for u in range(self.n_users):
                    # Server-side slot preparation: real weight + dummies.
                    # encrypt_value uses the CRT split under the fast
                    # backend -- the dummies are by far the bulk of the
                    # server's per-round encryption work.  Unlike
                    # run_round, this path deliberately has no offline
                    # pool prefill: the slot encryptions interleave with
                    # the OT exponent draws on the shared RNG, and
                    # prefilling would reorder those draws and break the
                    # seeded bit-exact equivalence with the reference
                    # backend (the randomizers are still CRT-split).
                    messages = [
                        self.server.encrypt_value(self.server.blinded_inverses[u])
                    ] + [self.server.encrypt_value(0) for _ in range(n_slots - 1)]
                    payloads = [
                        m.value.to_bytes(byte_len, "big") for m in messages
                    ]
                    choice = subsampler.slot_for(u, self.round_no)
                    sender = OTSender(group, n_slots, rng=rng)
                    receiver = OTReceiver(
                        group, sender.public_commitments(), choice, rng=rng
                    )
                    slots = sender.encrypt_slots(receiver.public_key(), payloads)
                    chosen = receiver.decrypt_choice(slots)
                    received.append(
                        PaillierCiphertext(int.from_bytes(chosen, "big"), pk)
                    )
                per_silo_inverses.append(received)

        with self.timer.phase("silo_weighted_encryption"):
            silo_vectors = self._silo_weighted_vectors(
                per_silo_inverses, clipped_deltas, noises
            )

        with self.timer.phase("aggregate_decrypt"):
            aggregate = self.server.aggregate_and_decrypt(
                silo_vectors, self.precision, self.c_lcm
            )
        self.round_no += 1
        return aggregate

    # -- Reference computation -------------------------------------------------

    def plaintext_reference(
        self,
        clipped_deltas: list[dict[int, np.ndarray]],
        noises: list[np.ndarray],
        sampled_users: np.ndarray | None = None,
    ) -> np.ndarray:
        """The non-secure computation Theorem 4 compares against."""
        totals = self.histogram.sum(axis=0)
        include = np.ones(self.n_users, dtype=bool)
        if sampled_users is not None:
            include[:] = False
            include[np.asarray(sampled_users, dtype=np.int64)] = True
        aggregate = np.zeros(len(noises[0]))
        for s in range(self.n_silos):
            for user, delta in clipped_deltas[s].items():
                if not include[user] or totals[user] == 0:
                    continue
                aggregate += (self.histogram[s, user] / totals[user]) * delta
            aggregate += noises[s]
        return aggregate
