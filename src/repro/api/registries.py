"""Named registries: the extension seams behind the declarative API.

Every pluggable family -- FL methods, benchmark datasets, model builders,
simulation scenarios, sparsifiers, experiments -- is a :class:`Registry`
of named factories populated through decorators::

    from repro.api import register_method

    @register_method("my-method", description="my custom optimiser")
    def _build_my_method(spec, crypto=None):
        return MyMethod(noise_multiplier=spec.sigma)

Third-party code registers at import time and ``repro run --set
method.name=my-method`` picks the entry up without touching core.  Lookups
of unknown names raise :class:`UnknownNameError` listing the valid names
plus a nearest-match suggestion (instead of a bare ``KeyError`` or an
argparse choice dump).

This module deliberately imports nothing from the rest of :mod:`repro`, so
low-level packages (``repro.compress``, ``repro.sim``) can register their
builtins here without import cycles.  The builtin method/dataset/model
entries live in :mod:`repro.api.builtin`.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Any, Callable


def suggest(name: str, valid: list[str]) -> str:
    """A `` -- did you mean 'x'?`` hint for the closest valid name.

    The one shared spelling-suggestion helper: registries, spec-path
    validation, and :class:`repro.compress.CompressionSpec` all route
    through it so cutoff and wording stay consistent.  Empty string when
    nothing is close.
    """
    close = difflib.get_close_matches(name, valid, n=1, cutoff=0.4)
    return f" -- did you mean {close[0]!r}?" if close else ""


class UnknownNameError(KeyError):
    """Lookup of a name absent from a registry.

    Subclasses ``KeyError`` for backward compatibility with callers that
    caught the old dict lookups, but carries a human-readable message
    listing the registry's valid names and the closest match.
    """

    def __init__(self, kind: str, name: str, valid: list[str]):
        self.kind = kind
        self.name = name
        self.valid = list(valid)
        message = (
            f"unknown {kind} {name!r}{suggest(name, self.valid)} "
            f"(valid: {', '.join(valid) if valid else '<none registered>'})"
        )
        super().__init__(message)
        self.message = message

    def __str__(self) -> str:  # KeyError would quote the whole message
        return self.message


@dataclass(frozen=True)
class RegistryEntry:
    """One named factory plus its metadata."""

    name: str
    factory: Callable[..., Any]
    description: str = ""
    #: Free-form metadata (e.g. a sparsifier's data-independence flag).
    meta: dict = field(default_factory=dict)


class Registry:
    """An ordered name -> factory mapping with decorator registration."""

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: dict[str, RegistryEntry] = {}

    def register(
        self, name: str, *, description: str = "", **meta
    ) -> Callable[[Callable], Callable]:
        """Decorator registering ``name``; re-registration is an error."""

        def decorator(factory: Callable) -> Callable:
            if name in self._entries:
                raise ValueError(
                    f"{self.kind} {name!r} is already registered "
                    f"(by {self._entries[name].factory!r})"
                )
            self._entries[name] = RegistryEntry(name, factory, description, meta)
            return factory

        return decorator

    def entry(self, name: str) -> RegistryEntry:
        """The full entry for ``name``; raises :class:`UnknownNameError`."""
        if name not in self._entries:
            raise UnknownNameError(self.kind, name, self.names())
        return self._entries[name]

    def get(self, name: str) -> Callable:
        """The factory registered under ``name``."""
        return self.entry(name).factory

    def describe(self, name: str) -> str:
        """The one-line description registered with ``name``."""
        return self.entry(name).description

    def names(self) -> list[str]:
        """All registered names, sorted."""
        return sorted(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self):
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)


#: FL methods: ``factory(method_spec, crypto_spec=None) -> FLMethod``.
METHODS = Registry("method")
#: Benchmark federations: ``factory(dataset_spec, seed) -> FederatedDataset``.
DATASETS = Registry("dataset")
#: Model builders: ``factory(rng, fed) -> Sequential`` ("auto" is implicit).
MODELS = Registry("model")
#: Simulation scenarios: entries are :class:`repro.sim.scenarios.Scenario`
#: config factories registered by :mod:`repro.sim.scenarios`.
SCENARIOS = Registry("scenario")
#: Sparsifier families: ``factory(vec, k, rng) -> indices`` (see
#: :mod:`repro.compress.sparsify`); ``meta["data_independent"]`` marks
#: supports the secure protocol could share.
SPARSIFIERS = Registry("sparsifier")
#: Paper experiments: ``factory(scale, seed) -> ExperimentResult``.
EXPERIMENTS = Registry("experiment")


def register_method(name: str, *, description: str = "", **meta):
    """Register an FL method factory ``(MethodSpec, CryptoSpec|None) -> FLMethod``."""
    return METHODS.register(name, description=description, **meta)


def register_dataset(name: str, *, description: str = "", **meta):
    """Register a dataset factory ``(DatasetSpec, seed) -> FederatedDataset``."""
    return DATASETS.register(name, description=description, **meta)


def register_model(name: str, *, description: str = "", **meta):
    """Register a model builder ``(rng, fed) -> Sequential``."""
    return MODELS.register(name, description=description, **meta)


def register_scenario(name: str, *, description: str = "", **meta):
    """Register a simulation scenario config factory ``(rounds, n_silos) -> dict``."""
    return SCENARIOS.register(name, description=description, **meta)


def register_sparsifier(name: str, *, description: str = "", **meta):
    """Register a sparsifier ``(vec, k, rng) -> indices`` (k selected coords)."""
    return SPARSIFIERS.register(name, description=description, **meta)


def register_experiment(name: str, *, description: str = "", **meta):
    """Register an experiment ``(scale, seed) -> ExperimentResult``."""
    return EXPERIMENTS.register(name, description=description, **meta)
