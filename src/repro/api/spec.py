"""The declarative :class:`RunSpec` tree: one validated config per run.

A :class:`RunSpec` captures everything that defines one training or
simulation run -- dataset, model, method, privacy, compression, crypto,
simulation scenario -- as a typed, validated, serialisable tree:

- dict / JSON / TOML round-trips are exact (``spec == from_dict(to_dict)``),
- every validation error names the offending dotted path
  (``method: sigma must be non-negative``),
- :func:`spec_hash` is a canonical content hash stamped into every
  :class:`repro.core.trainer.TrainingHistory` and simulation checkpoint,
  making results self-describing and letting ``--resume`` refuse a
  mismatched spec,
- ``spec.sweep`` holds grid axes (``{"method.sigma": [0.5, 1.0, 2.0]}``)
  that :func:`repro.api.sweep.expand_sweep` expands into child specs.

Two modes share the tree:

- **train** (``sim`` absent): ``dataset``/``model``/``method`` describe a
  plain :class:`repro.core.Trainer` run.
- **simulate** (``sim`` present): the named scenario owns the dataset and
  participation dynamics; only the ``method`` section may be customised
  (its sim-mode default is the scenario family's canonical
  ``uldp-avg-w`` with one local epoch).
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.api import tomlcompat
from repro.api.registries import suggest
from repro.compress import CompressionSpec

SCALES = ("smoke", "small", "paper")
DISTRIBUTIONS = ("uniform", "zipf")
ENGINES = ("loop", "vectorized")
#: Array namespaces the sharded engine's fold can run on (mirrors
#: :data:`repro.nn.backend.BACKENDS`; kept literal so the spec layer
#: stays import-light -- pinned equal by tests/api/test_spec.py).
ARRAY_BACKENDS = ("numpy", "torch", "cupy")
GROUP_ROUTES = ("rdp", "dp")
CRYPTO_BACKENDS = ("reference", "fast", "masked")

#: Method name whose factory consumes the ``crypto`` section.
SECURE_METHOD = "secure-uldp-avg"


class SpecError(ValueError):
    """Invalid spec content; the message names the offending dotted path."""


# -- leaf sections ------------------------------------------------------------


@dataclass(frozen=True)
class DatasetSpec:
    """Which benchmark federation to build, and at what size.

    ``seed = None`` inherits the run seed.  The fixed-silo benchmarks
    (``heartdisease``, ``tcgabrca``) ignore ``silos``/``records`` -- their
    silo layout is part of the benchmark definition.
    """

    name: str = "creditcard"
    users: int = 100
    silos: int = 5
    records: int = 4000
    test_records: int | None = None
    distribution: str = "zipf"
    non_iid: bool = False
    seed: int | None = None

    def __post_init__(self):
        if self.users < 1:
            raise SpecError("users must be at least 1")
        if self.silos < 1:
            raise SpecError("silos must be at least 1")
        if self.records < 1:
            raise SpecError("records must be at least 1")
        if self.test_records is not None and self.test_records < 1:
            raise SpecError("test_records must be at least 1")
        if self.distribution not in DISTRIBUTIONS:
            raise SpecError(f"distribution must be one of {DISTRIBUTIONS}")


@dataclass(frozen=True)
class ModelSpec:
    """Which model to train; ``"auto"`` selects the paper's per-benchmark
    default (:func:`repro.core.trainer.default_model_for`)."""

    name: str = "auto"

    def __post_init__(self):
        if not self.name:
            raise SpecError("name must be a non-empty model name or 'auto'")


@dataclass(frozen=True)
class MethodSpec:
    """Which FL method to run and its hyper-parameters.

    Only the fields a method consumes are honoured by its registry
    factory; e.g. ``group_size`` matters to ``uldp-group`` alone, and
    ``batch_size`` maps to ULDP-GROUP's ``expected_batch_size`` (the
    legacy CLI behaviour).  ``sample_rate = 1.0`` is normalised to "no
    sub-sampling" (q = 1 with no per-round Poisson draw).
    """

    name: str = "uldp-avg-w"
    sigma: float = 5.0
    clip: float = 1.0
    local_epochs: int = 2
    local_lr: float = 0.05
    global_lr: float | None = None
    batch_size: int | None = None
    group_size: int | str = 8
    group_route: str = "rdp"
    sample_rate: float | None = None
    engine: str = "vectorized"

    def __post_init__(self):
        if not self.name:
            raise SpecError("name must be a non-empty method name")
        if self.sigma < 0:
            raise SpecError("sigma must be non-negative")
        if self.clip <= 0:
            raise SpecError("clip must be positive")
        if self.local_epochs < 1:
            raise SpecError("local_epochs must be at least 1")
        if self.local_lr <= 0:
            raise SpecError("local_lr must be positive")
        if self.global_lr is not None and self.global_lr <= 0:
            raise SpecError("global_lr must be positive (or omitted)")
        if self.batch_size is not None and self.batch_size < 1:
            raise SpecError("batch_size must be at least 1")
        if isinstance(self.group_size, bool) or (
            isinstance(self.group_size, int) and self.group_size < 1
        ):
            raise SpecError("group_size must be a positive int or a policy name")
        if self.group_route not in GROUP_ROUTES:
            raise SpecError(f"group_route must be one of {GROUP_ROUTES}")
        if self.sample_rate is not None and not 0 < self.sample_rate <= 1:
            raise SpecError("sample_rate must lie in (0, 1]")
        if self.engine not in ENGINES:
            raise SpecError(f"engine must be one of {ENGINES}")


@dataclass(frozen=True)
class PrivacySpec:
    """Accounting parameters shared by every private method."""

    delta: float = 1e-5

    def __post_init__(self):
        if not 0 < self.delta < 1:
            raise SpecError("delta must lie in (0, 1)")


@dataclass(frozen=True)
class CryptoSpec:
    """Secure-aggregation wiring, consumed by the ``secure-uldp-avg`` method.

    ``backend="masked"`` selects pairwise-mask secure aggregation
    (``mask_bits`` field width, ``paillier_bits``/``workers`` unused);
    the Paillier backends (``"reference"``/``"fast"``) run Protocol 1.
    """

    backend: str = "fast"
    paillier_bits: int = 512
    n_max: int = 64
    workers: int | None = None
    mask_bits: int = 256
    #: Masked-backend survivor quorum: abort (QuorumError) any round whose
    #: surviving-silo count falls below this instead of aggregating.
    min_survivors: int = 1

    def __post_init__(self):
        if self.backend not in CRYPTO_BACKENDS:
            raise SpecError(f"backend must be one of {CRYPTO_BACKENDS}")
        if self.min_survivors < 1:
            raise SpecError("min_survivors must be at least 1")
        if self.paillier_bits < 128:
            raise SpecError("paillier_bits must be at least 128")
        if self.n_max < 1:
            raise SpecError("n_max must be at least 1")
        if self.workers is not None and self.workers < 1:
            raise SpecError("workers must be at least 1 (or omitted)")
        if self.mask_bits < 64:
            raise SpecError("mask_bits must be at least 64")
        if self.mask_bits % 8 != 0:
            raise SpecError("mask_bits must be a multiple of 8")


@dataclass(frozen=True)
class SimSpec:
    """Which named federation scenario to run, and how to checkpoint it."""

    scenario: str = "ideal-sync"
    scale: str = "small"
    checkpoint_dir: str | None = None
    checkpoint_every: int | None = None

    def __post_init__(self):
        if not self.scenario:
            raise SpecError("scenario must be a non-empty scenario name")
        if self.scale not in SCALES:
            raise SpecError(f"scale must be one of {SCALES}")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise SpecError("checkpoint_every must be at least 1 (or omitted)")


@dataclass(frozen=True)
class NetSpec:
    """Networked-federation runtime wiring (``repro serve`` / ``repro silo``).

    Only meaningful alongside a ``[sim]`` section: the server process runs
    the scenario's :class:`repro.sim.FederationSimulator` and farms each
    round's per-silo training out to silo processes over TCP
    (:mod:`repro.net`).  Timeouts are wall-clock seconds and name the
    phase they bound: ``join_timeout`` (roster registration and silo-side
    connects), ``ping_timeout`` (per-round liveness heartbeats),
    ``round_timeout`` (one silo's compute+upload), ``idle_timeout`` (a
    silo waiting for its next instruction).  ``min_quorum`` aborts the run
    (:class:`repro.core.weighting.QuorumError`) when fewer live silos
    answer a round's heartbeat.  ``faults`` is a deterministic
    fault-injection plan (:class:`repro.net.faults.FaultPlan` tree) that
    silo processes apply to themselves -- the chaos-test harness.
    """

    host: str = "127.0.0.1"
    #: TCP port; 0 = OS-assigned (``repro serve`` prints the bound port).
    port: int = 0
    join_timeout: float = 30.0
    round_timeout: float = 60.0
    ping_timeout: float = 5.0
    idle_timeout: float = 600.0
    #: Silo-side connect/reconnect retries with exponential backoff.
    connect_retries: int = 8
    backoff_base: float = 0.1
    backoff_max: float = 2.0
    backoff_jitter: float = 0.5
    min_quorum: int = 1
    faults: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.host:
            raise SpecError("host must be non-empty")
        if not 0 <= self.port <= 65535:
            raise SpecError("port must lie in [0, 65535]")
        for name in ("join_timeout", "round_timeout", "ping_timeout", "idle_timeout"):
            if getattr(self, name) <= 0:
                raise SpecError(f"{name} must be positive")
        if self.connect_retries < 0:
            raise SpecError("connect_retries must be non-negative")
        if self.backoff_base <= 0:
            raise SpecError("backoff_base must be positive")
        if self.backoff_max < self.backoff_base:
            raise SpecError("backoff_max must be at least backoff_base")
        if not 0 <= self.backoff_jitter <= 1:
            raise SpecError("backoff_jitter must lie in [0, 1]")
        if self.min_quorum < 1:
            raise SpecError("min_quorum must be at least 1")
        if not isinstance(self.faults, dict):
            raise SpecError("faults must be a table (a FaultPlan tree)")
        from repro.net.faults import FaultPlan

        try:
            FaultPlan.from_tree(self.faults)
        except ValueError as exc:
            raise SpecError(f"faults: {exc}") from exc


@dataclass(frozen=True)
class ObsSpec:
    """Observability wiring: tracing spans and the live metrics endpoint.

    Deliberately **excluded from the canonical spec hash** -- turning
    telemetry on or off never changes a run's identity, so traced runs
    resume untraced checkpoints (and vice versa) and networked
    server/silo pairs may disagree about ``[obs]`` without failing the
    spec-hash handshake.  With ``enabled = False`` (the default) the
    whole subsystem is a no-op and runs are bit-identical to builds
    without it.

    ``trace_path = None`` places ``trace.jsonl`` next to checkpoints
    (``sim.checkpoint_dir``) when there are any, else in the working
    directory.  ``sample_rate`` keeps only a deterministic subset of
    round spans (see :mod:`repro.obs.trace`).  ``metrics_port`` serves
    ``GET /metrics`` (Prometheus text) on a side port; 0 = OS-assigned.
    """

    enabled: bool = False
    trace_path: str | None = None
    sample_rate: float = 1.0
    metrics_port: int | None = None

    def __post_init__(self):
        if not isinstance(self.enabled, bool):
            raise SpecError("enabled must be a boolean")
        if not 0 < self.sample_rate <= 1:
            raise SpecError("sample_rate must lie in (0, 1]")
        if self.metrics_port is not None and not 0 <= self.metrics_port <= 65535:
            raise SpecError("metrics_port must lie in [0, 65535] (or omitted)")


@dataclass(frozen=True)
class EngineSpec:
    """Sharded execution layout of the vectorized round hot path.

    A pure performance/memory knob with one documented exception:
    ``workers`` and ``shard_size`` never change results (the shard plan
    is independent of the worker count, shards align to the engine's
    numerical micro-batches, and partials combine through an exact
    binned reduction -- see docs/scaleout.md), while a non-``numpy``
    ``backend`` may differ at floating-point level on non-conformant
    hardware.  ``workers = 0`` (the default) computes shards in-process;
    ``workers >= 1`` runs them on a persistent process pool.
    """

    workers: int = 0
    shard_size: int = 4096
    backend: str = "numpy"

    def __post_init__(self):
        if not isinstance(self.workers, int) or isinstance(self.workers, bool):
            raise SpecError("workers must be an integer")
        if self.workers < 0:
            raise SpecError("workers must be >= 0 (0 = in-process)")
        if not isinstance(self.shard_size, int) or isinstance(self.shard_size, bool):
            raise SpecError("shard_size must be an integer")
        if self.shard_size < 1:
            raise SpecError("shard_size must be >= 1")
        if self.backend not in ARRAY_BACKENDS:
            raise SpecError(f"backend must be one of {ARRAY_BACKENDS}")


@dataclass(frozen=True)
class CostSpec:
    """Capacity-planning inputs for the symbolic cost model (``repro cost``).

    Like ``[obs]``, this section is **excluded from the canonical spec
    hash**: asking "what would this run cost?" or attaching budgets never
    changes what the run computes, so it must not change the run's
    identity (checkpoints resume across ``[cost]`` edits).

    Budgets are consumed by ``repro cost --solve-for users`` and by
    ``repro sweep`` pruning; ``bandwidth_mbps``/``retry_overhead`` add a
    network-transfer term to the predicted wall clock (megabits/second
    and expected retransmission fraction); ``calibration`` overrides the
    committed ``calibration.json`` path.
    """

    budget_seconds: float | None = None
    budget_uplink_bytes: float | None = None
    budget_memory_bytes: float | None = None
    bandwidth_mbps: float | None = None
    retry_overhead: float = 0.0
    calibration: str | None = None

    def __post_init__(self):
        for name in ("budget_seconds", "budget_uplink_bytes", "budget_memory_bytes"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise SpecError(f"{name} must be positive (or omitted)")
        if self.bandwidth_mbps is not None and self.bandwidth_mbps <= 0:
            raise SpecError("bandwidth_mbps must be positive (or omitted)")
        if self.retry_overhead < 0:
            raise SpecError("retry_overhead must be non-negative")
        if self.calibration is not None and not self.calibration:
            raise SpecError("calibration must be a non-empty path (or omitted)")


# -- the root -----------------------------------------------------------------

#: Section name -> dataclass of the subtree.
_SECTIONS: dict[str, type] = {
    "dataset": DatasetSpec,
    "model": ModelSpec,
    "method": MethodSpec,
    "privacy": PrivacySpec,
    "compression": CompressionSpec,
    "sim": SimSpec,
    "crypto": CryptoSpec,
    "net": NetSpec,
    "obs": ObsSpec,
    "engine": EngineSpec,
    "cost": CostSpec,
}

#: Scalar keys living directly on the root.
_ROOT_SCALARS = ("name", "seed", "rounds", "eval_every")


@dataclass(frozen=True)
class RunSpec:
    """One complete, validated run configuration (see module docstring).

    ``rounds = None`` means "the mode's default": 5 for a plain training
    run, the scenario scale's round count for a simulation.
    """

    name: str = "run"
    seed: int = 0
    rounds: int | None = None
    eval_every: int = 1
    dataset: DatasetSpec | None = None
    model: ModelSpec = field(default_factory=ModelSpec)
    method: MethodSpec | None = None
    privacy: PrivacySpec = field(default_factory=PrivacySpec)
    compression: CompressionSpec | None = None
    sim: SimSpec | None = None
    crypto: CryptoSpec | None = None
    net: NetSpec | None = None
    obs: ObsSpec | None = None
    engine: EngineSpec | None = None
    cost: CostSpec | None = None
    #: Sweep axes: dotted config path -> list of values (one grid).
    sweep: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.name:
            raise SpecError("name must be non-empty")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise SpecError("seed must be an integer")
        if self.rounds is not None and (
            not isinstance(self.rounds, int) or self.rounds < 1
        ):
            raise SpecError("rounds must be an integer >= 1 (or omitted)")
        if not isinstance(self.eval_every, int) or self.eval_every < 1:
            raise SpecError("eval_every must be an integer >= 1")
        if self.sim is not None:
            if self.dataset is not None:
                raise SpecError(
                    "dataset: not allowed alongside [sim] -- the scenario "
                    "owns the dataset (see docs/api.md)"
                )
            if self.model.name != "auto":
                raise SpecError("model: must stay 'auto' alongside [sim]")
            if self.compression is not None:
                raise SpecError(
                    "compression: not allowed alongside [sim] -- scenario "
                    "recipes bundle their own compression"
                )
            if self.method is None:
                # The scenario family's canonical method (what every
                # legacy ``repro simulate`` run used).
                object.__setattr__(self, "method", MethodSpec(local_epochs=1))
        else:
            if self.dataset is None:
                object.__setattr__(self, "dataset", DatasetSpec())
            if self.method is None:
                object.__setattr__(self, "method", MethodSpec())
        if self.net is not None and self.sim is None:
            raise SpecError(
                "net: only meaningful alongside [sim] -- repro serve "
                "drives a named scenario (see docs/networking.md)"
            )
        if self.engine is not None and self.sim is not None:
            raise SpecError(
                "engine: not allowed alongside [sim] -- scenario recipes "
                "drive their own trainers; sharded execution applies to "
                "plain training runs (see docs/scaleout.md)"
            )
        if self.crypto is not None and self.method.name != SECURE_METHOD:
            raise SpecError(
                f"crypto: only consumed by method.name={SECURE_METHOD!r} "
                f"(got method.name={self.method.name!r})"
            )
        for path, values in self.sweep.items():
            validate_path(path, sweep_axis=True)
            if not isinstance(values, (list, tuple)) or len(values) == 0:
                raise SpecError(f"sweep.{path}: axis must be a non-empty list")
        # Normalise sweep values to plain lists for stable serialisation.
        object.__setattr__(
            self, "sweep", {p: list(v) for p, v in self.sweep.items()}
        )

    # -- serialisation --------------------------------------------------------

    @property
    def is_simulation(self) -> bool:
        """Whether this spec runs a named scenario (vs a plain trainer)."""
        return self.sim is not None

    def to_dict(self) -> dict:
        """The fully-resolved plain-dict tree (defaults materialised).

        ``None``-valued optional sections are omitted; inside sections,
        ``None`` fields are kept (JSON ``null``) and dropped on the TOML
        path -- both read back identically because every optional field
        defaults to ``None``.
        """
        data: dict = {
            "name": self.name,
            "seed": self.seed,
            "eval_every": self.eval_every,
        }
        if self.rounds is not None:
            data["rounds"] = self.rounds
        if self.dataset is not None:
            data["dataset"] = dataclasses.asdict(self.dataset)
        data["model"] = dataclasses.asdict(self.model)
        data["method"] = dataclasses.asdict(self.method)
        data["privacy"] = dataclasses.asdict(self.privacy)
        if self.compression is not None:
            data["compression"] = dataclasses.asdict(self.compression)
        if self.sim is not None:
            data["sim"] = dataclasses.asdict(self.sim)
        if self.crypto is not None:
            data["crypto"] = dataclasses.asdict(self.crypto)
        if self.net is not None:
            data["net"] = dataclasses.asdict(self.net)
        if self.obs is not None:
            data["obs"] = dataclasses.asdict(self.obs)
        if self.engine is not None:
            data["engine"] = dataclasses.asdict(self.engine)
        if self.cost is not None:
            data["cost"] = dataclasses.asdict(self.cost)
        if self.sweep:
            data["sweep"] = {p: list(v) for p, v in self.sweep.items()}
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        """Build and validate a spec from a plain dict tree.

        Unknown keys and invalid values raise :class:`SpecError` naming
        the offending dotted path.
        """
        if not isinstance(data, dict):
            raise SpecError(f"spec root must be a table, got {type(data).__name__}")
        data = dict(data)
        kwargs: dict = {}
        root_fields = {f.name: f for f in dataclasses.fields(cls)}
        for key in _ROOT_SCALARS:
            if key in data:
                kwargs[key] = _coerce(
                    data.pop(key), str(root_fields[key].type), key
                )
        for section, section_cls in _SECTIONS.items():
            if section in data:
                payload = data.pop(section)
                if not isinstance(payload, dict):
                    raise SpecError(
                        f"{section}: must be a table, got {type(payload).__name__}"
                    )
                kwargs[section] = _build_section(section_cls, payload, section)
        if "sweep" in data:
            sweep = data.pop("sweep")
            if not isinstance(sweep, dict):
                raise SpecError("sweep: must be a table of axis -> value list")
            kwargs["sweep"] = sweep
        if data:
            unknown = sorted(data)[0]
            hint = suggest(unknown, [*_ROOT_SCALARS, *_SECTIONS, "sweep"])
            raise SpecError(f"{unknown}: unknown config key{hint}")
        try:
            return cls(**kwargs)
        except SpecError:
            raise
        except (TypeError, ValueError) as exc:
            raise SpecError(str(exc)) from exc

    def to_json(self, indent: int | None = 2) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    def to_toml(self, header: str | None = None) -> str:
        """TOML form of :meth:`to_dict` (``None`` fields omitted)."""
        return tomlcompat.dumps(self.to_dict(), header=header)

    @classmethod
    def from_file(cls, path: str | Path) -> "RunSpec":
        """Load a ``.toml`` or ``.json`` spec file."""
        return cls.from_dict(load_spec_tree(path))

    # -- identity -------------------------------------------------------------

    def canonical_json(self) -> str:
        """The canonical (sorted, compact) JSON the spec hash is taken over.

        The ``obs`` and ``cost`` sections are excluded: observability and
        cost budgets never change what a run computes, so they must not
        change the run's identity (see :class:`ObsSpec` /
        :class:`CostSpec`).
        """
        data = self.to_dict()
        data.pop("obs", None)
        data.pop("cost", None)
        return json.dumps(data, sort_keys=True, separators=(",", ":"))

    def hash(self) -> str:
        """Canonical content hash (first 16 hex chars of SHA-256).

        Invariant under the ``obs`` section -- see :meth:`canonical_json`.
        """
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()[:16]

    # -- derived specs --------------------------------------------------------

    def with_overrides(self, assignments: dict) -> "RunSpec":
        """A new spec with dotted-path assignments applied (re-validated)."""
        return RunSpec.from_dict(apply_overrides(self.to_dict(), assignments))


def spec_hash(spec: RunSpec) -> str:
    """Module-level alias for :meth:`RunSpec.hash`."""
    return spec.hash()


# -- section building ---------------------------------------------------------


def _coerce(value, annotation: str, path: str):
    """Light type coercion for values arriving from TOML/JSON.

    Integers are promoted where a float is expected (TOML ``sigma = 5``)
    and integral floats demoted where an int is expected (JSON
    ``rounds = 5.0``); a *fractional* float into an int-typed field is an
    error naming the path -- the downstream code would otherwise run with
    a round count or user count the spec never declared.  Booleans are
    not treated as integers.
    """
    if isinstance(value, bool):
        if "bool" not in annotation:
            raise SpecError(f"{path}: expected a number, got a boolean")
        return value
    wants_float = "float" in annotation
    wants_int = "int" in annotation
    if isinstance(value, int) and wants_float and not wants_int:
        return float(value)
    if isinstance(value, float) and wants_int and not wants_float:
        if value.is_integer():
            return int(value)
        raise SpecError(f"{path}: expected an integer, got {value!r}")
    return value


def _build_section(section_cls: type, payload: dict, path: str):
    """Construct one sub-spec dataclass with path-prefixed errors."""
    fields = {f.name: f for f in dataclasses.fields(section_cls)}
    kwargs = {}
    for key, value in payload.items():
        if key not in fields:
            raise SpecError(
                f"{path}.{key}: unknown key{suggest(key, list(fields))} "
                f"(valid: {', '.join(sorted(fields))})"
            )
        kwargs[key] = _coerce(value, str(fields[key].type), f"{path}.{key}")
    try:
        return section_cls(**kwargs)
    except SpecError as exc:
        raise SpecError(f"{path}: {exc}") from exc
    except (TypeError, ValueError) as exc:
        raise SpecError(f"{path}: {exc}") from exc


# -- dotted-path overrides ----------------------------------------------------


def _valid_paths() -> list[str]:
    """Every assignable dotted path (for error suggestions)."""
    paths = list(_ROOT_SCALARS)
    for section, section_cls in _SECTIONS.items():
        paths.append(section)
        paths.extend(f"{section}.{f.name}" for f in dataclasses.fields(section_cls))
    return paths


def validate_path(path: str, sweep_axis: bool = False) -> None:
    """Check a dotted override path addresses a real spec field.

    Accepted shapes: a root scalar (``rounds``), a ``section.field`` pair
    (``method.sigma``), or -- for sweep axes -- a bare section name
    (``method``) whose values are whole-section tables.
    """
    parts = path.split(".")
    kind = "sweep axis" if sweep_axis else "config path"
    if parts[0] == "sweep":
        raise SpecError(f"{path}: cannot nest sweep under {kind}")
    if len(parts) == 1:
        if parts[0] in _ROOT_SCALARS:
            return
        if parts[0] in _SECTIONS:
            if sweep_axis:
                return  # axis of whole-section tables (e.g. method grids)
            raise SpecError(
                f"{path}: a section cannot be assigned directly; "
                f"set one of its fields (e.g. {parts[0]}."
                f"{dataclasses.fields(_SECTIONS[parts[0]])[0].name})"
            )
    elif len(parts) == 2 and parts[0] in _SECTIONS:
        fields = {f.name for f in dataclasses.fields(_SECTIONS[parts[0]])}
        if parts[1] in fields:
            return
    raise SpecError(f"{path}: unknown {kind}{suggest(path, _valid_paths())}")


def apply_overrides(tree: dict, assignments: dict) -> dict:
    """Apply dotted-path assignments to a plain spec tree (returns a copy).

    Paths are validated against the schema; assigning into an absent
    optional section (``sim.scenario`` on a train spec) creates it.
    Assigning ``sweep.<path>`` sets a sweep axis (value must be a list).
    """
    out = copy.deepcopy(tree)
    for path, value in assignments.items():
        parts = path.split(".")
        if parts[0] == "sweep" and len(parts) > 1:
            axis = ".".join(parts[1:])
            validate_path(axis, sweep_axis=True)
            if not isinstance(value, (list, tuple)):
                raise SpecError(f"{path}: a sweep axis needs a list of values")
            out.setdefault("sweep", {})[axis] = list(value)
            continue
        validate_path(path)
        target = out
        for part in parts[:-1]:
            target = target.setdefault(part, {})
            if not isinstance(target, dict):
                raise SpecError(f"{path}: {part} is not a table")
        target[parts[-1]] = value
    return out


def parse_assignment(text: str) -> tuple[str, object]:
    """Parse one ``--set path=value`` argument.

    The value is read as JSON when possible (numbers, booleans, lists,
    ``null``, quoted strings) and as a bare string otherwise, so
    ``--set method.sigma=1.5`` and ``--set method.name=uldp-avg-w`` both
    do the obvious thing.
    """
    path, eq, raw = text.partition("=")
    path = path.strip()
    if not eq or not path:
        raise SpecError(f"--set expects path=value, got {text!r}")
    raw = raw.strip()
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        value = raw
    return path, value


# -- files --------------------------------------------------------------------


def load_spec_tree(path: str | Path) -> dict:
    """Read a spec file into a plain dict tree (TOML or JSON by suffix)."""
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() == ".json":
        data = json.loads(text)
    elif path.suffix.lower() == ".toml":
        data = tomlcompat.loads(text)
    else:
        raise SpecError(f"{path}: unsupported spec file type (use .toml or .json)")
    if not isinstance(data, dict):
        raise SpecError(f"{path}: spec file must contain a table at the root")
    return data


# -- sweep expansion ----------------------------------------------------------


@dataclass(frozen=True)
class SweepPoint:
    """One expanded grid point: a child spec plus its axis assignments."""

    label: str
    assignments: dict
    spec: RunSpec


def _axis_label(path: str, value) -> str:
    if isinstance(value, dict):
        return f"{path}={value.get('name', '<table>')}"
    return f"{path}={value}"


def expand_sweep(spec: RunSpec) -> list[SweepPoint]:
    """Expand ``spec.sweep`` axes into the full grid of child specs.

    Each child drops the ``sweep`` table, applies one combination of axis
    values, and gets ``name`` suffixed with the grid point's assignments
    -- so every child's :func:`spec_hash` is distinct and self-describing.
    A spec without axes expands to itself (one point, empty label).
    """
    if not spec.sweep:
        return [SweepPoint("", {}, spec)]
    base = spec.to_dict()
    base.pop("sweep", None)
    axes = list(spec.sweep.items())
    points = []
    for combo in itertools.product(*(values for _, values in axes)):
        assignments = {path: value for (path, _), value in zip(axes, combo)}
        label = ", ".join(_axis_label(p, v) for p, v in assignments.items())
        tree = copy.deepcopy(base)
        for path, value in assignments.items():
            if "." not in path:  # whole-section table axis
                if not isinstance(value, dict):
                    raise SpecError(
                        f"sweep.{path}: whole-section axis values must be "
                        f"tables, got {type(value).__name__}"
                    )
                tree[path] = copy.deepcopy(value)
            else:
                tree = apply_overrides(tree, {path: value})
        tree["name"] = f"{spec.name}[{label}]"
        points.append(SweepPoint(label, assignments, RunSpec.from_dict(tree)))
    return points
