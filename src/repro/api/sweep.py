"""Grid sweeps: expand a spec's axes, run the children, aggregate a table.

A sweep is declared inside the spec itself::

    [sweep]
    "method.sigma" = [0.5, 1.0, 2.0]
    "method.name" = ["uldp-avg", "uldp-avg-w"]

:func:`run_sweep` expands the cartesian grid (6 child specs here), runs
each child through :func:`repro.api.runner.run` -- optionally across a
process pool -- and returns a :class:`SweepResult` whose :meth:`table`
is one comparison table over all grid points.  Every child history is
stamped with its own spec snapshot/hash, so archived sweep output is
self-describing per run.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass

from repro.api.runner import RunResult, run, validate_spec_names
from repro.api.spec import RunSpec, SpecError, SweepPoint, expand_sweep


@dataclass
class SweepResult:
    """All grid points of one sweep, in expansion order."""

    base: RunSpec
    points: list[SweepPoint]
    results: list[RunResult]

    def __post_init__(self):
        if len(self.points) != len(self.results):
            raise ValueError("one result per grid point required")

    @property
    def histories(self) -> list:
        return [r.history for r in self.results]

    def table(self) -> str:
        """One aggregated comparison table across all grid points."""
        lines = [
            f"{'config':<36s} {'method':<18s} {'metric':>8s} {'loss':>10s} "
            f"{'eps':>10s} {'spec':>18s}"
        ]
        for point, result in zip(self.points, self.results):
            final = result.history.final
            eps = "(none)" if final.epsilon is None else f"{final.epsilon:.3f}"
            label = point.label or "(base)"
            lines.append(
                f"{label:<36s} {result.history.method:<18s} "
                f"{final.metric:8.4f} {final.loss:10.4f} {eps:>10s} "
                f"{result.spec_hash:>18s}"
            )
        return "\n".join(lines)


def _run_point_subprocess(tree: dict) -> tuple[dict, str]:
    """Worker-side child execution (module-level for pickling).

    Returns the serialised history + spec hash; the parent rebuilds
    :class:`RunResult` objects from them (simulator/dataset handles do
    not cross process boundaries).
    """
    from repro.report import history_to_dict

    result = run(RunSpec.from_dict(tree))
    return history_to_dict(result.history), result.spec_hash


def _dataset_cache_key(spec: RunSpec) -> str | None:
    """Cache identity of a train-mode spec's federation (None = no reuse).

    Two grid points share a dataset exactly when their ``dataset``
    section and resolved seed agree -- the same criterion the legacy
    experiment registry used when it built one federation per figure.
    """
    if spec.is_simulation:
        return None
    seed = spec.dataset.seed if spec.dataset.seed is not None else spec.seed
    key = dict(dataclasses.asdict(spec.dataset), _resolved_seed=seed)
    return json.dumps(key, sort_keys=True)


def run_sweep(spec: RunSpec, workers: int | None = None) -> SweepResult:
    """Expand and run a sweep spec; returns all grid-point results.

    Every grid point's registry names are validated before anything
    runs, so a typo in one axis value fails fast instead of after the
    preceding points trained.

    Args:
        spec: a :class:`RunSpec` with at least one ``sweep`` axis (a spec
            without axes runs as a single-point grid).
        workers: run children across a process pool of this size
            (sequential when None).  Parallel children return histories
            only -- simulator/dataset handles stay in-process, so
            sequential mode is what experiment post-processing that needs
            the simulator should use.
    """
    points = expand_sweep(spec)
    for point in points:
        validate_spec_names(point.spec)
    if workers is not None and workers < 1:
        raise SpecError("workers must be at least 1 (or None for sequential)")
    if workers is None or workers == 1 or len(points) == 1:
        # Grid points sharing a dataset section reuse one built
        # federation (training never mutates it; the pre-spec experiment
        # registry relied on the same reuse).
        datasets: dict[str, object] = {}
        results = []
        for point in points:
            key = _dataset_cache_key(point.spec)
            result = run(point.spec, dataset=datasets.get(key))
            if key is not None:
                datasets[key] = result.dataset
            results.append(result)
        return SweepResult(base=spec, points=points, results=results)

    from concurrent.futures import ProcessPoolExecutor

    from repro.report import history_from_dict

    with ProcessPoolExecutor(max_workers=min(workers, len(points))) as pool:
        payloads = list(
            pool.map(
                _run_point_subprocess, [p.spec.to_dict() for p in points]
            )
        )
    results = [
        RunResult(
            spec=point.spec,
            spec_hash=digest,
            history=history_from_dict(payload),
        )
        for point, (payload, digest) in zip(points, payloads)
    ]
    return SweepResult(base=spec, points=points, results=results)
