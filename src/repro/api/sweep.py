"""Grid sweeps: expand a spec's axes, run the children, aggregate a table.

A sweep is declared inside the spec itself::

    [sweep]
    "method.sigma" = [0.5, 1.0, 2.0]
    "method.name" = ["uldp-avg", "uldp-avg-w"]

:func:`run_sweep` expands the cartesian grid (6 child specs here), runs
each child through :func:`repro.api.runner.run` -- optionally across a
process pool -- and returns a :class:`SweepResult` whose :meth:`table`
is one comparison table over all grid points.  Every child history is
stamped with its own spec snapshot/hash, so archived sweep output is
self-describing per run.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

from repro.api.runner import RunResult, run, validate_spec_names
from repro.api.spec import RunSpec, SpecError, SweepPoint, expand_sweep


@dataclass(frozen=True)
class PrunedPoint:
    """A grid point skipped by cost pruning, with the violated budget."""

    point: SweepPoint
    metric: str
    predicted: float
    budget: float

    @property
    def label(self) -> str:
        return self.point.label or "(base)"


@dataclass
class SweepResult:
    """All grid points of one sweep, in expansion order."""

    base: RunSpec
    points: list[SweepPoint]
    results: list[RunResult]
    #: Grid points skipped by ``prune_cost_*`` budgets (never executed).
    pruned: list[PrunedPoint] = field(default_factory=list)

    def __post_init__(self):
        if len(self.points) != len(self.results):
            raise ValueError("one result per grid point required")

    @property
    def histories(self) -> list:
        return [r.history for r in self.results]

    def table(self) -> str:
        """One aggregated comparison table across all grid points."""
        lines = [
            f"{'config':<36s} {'method':<18s} {'metric':>8s} {'loss':>10s} "
            f"{'eps':>10s} {'spec':>18s}"
        ]
        for point, result in zip(self.points, self.results):
            final = result.history.final
            eps = "(none)" if final.epsilon is None else f"{final.epsilon:.3f}"
            label = point.label or "(base)"
            lines.append(
                f"{label:<36s} {result.history.method:<18s} "
                f"{final.metric:8.4f} {final.loss:10.4f} {eps:>10s} "
                f"{result.spec_hash:>18s}"
            )
        return "\n".join(lines)


def _run_point_subprocess(tree: dict) -> tuple[dict, str]:
    """Worker-side child execution (module-level for pickling).

    Returns the serialised history + spec hash; the parent rebuilds
    :class:`RunResult` objects from them (simulator/dataset handles do
    not cross process boundaries).
    """
    from repro.report import history_to_dict

    result = run(RunSpec.from_dict(tree))
    return history_to_dict(result.history), result.spec_hash


def _dataset_cache_key(spec: RunSpec) -> str | None:
    """Cache identity of a train-mode spec's federation (None = no reuse).

    Two grid points share a dataset exactly when their ``dataset``
    section and resolved seed agree -- the same criterion the legacy
    experiment registry used when it built one federation per figure.
    """
    if spec.is_simulation:
        return None
    seed = spec.dataset.seed if spec.dataset.seed is not None else spec.seed
    key = dict(dataclasses.asdict(spec.dataset), _resolved_seed=seed)
    return json.dumps(key, sort_keys=True)


def _prune_points(
    spec: RunSpec,
    points: list[SweepPoint],
    budget_seconds: float | None,
    budget_bytes: float | None,
) -> tuple[list[SweepPoint], list[PrunedPoint]]:
    """Split grid points into (kept, pruned) by predicted whole-run cost.

    A point the cost model cannot price (e.g. an unregistered model with
    no shape metadata) is *kept*: pruning may only skip work it can prove
    over budget, never silently drop an unmodelled configuration.
    """
    from repro.cost.calibrate import load_calibration
    from repro.cost.planner import predict
    from repro.cost.workload import CostError

    calibration = load_calibration(
        spec.cost.calibration if spec.cost is not None else None
    )
    kept: list[SweepPoint] = []
    pruned: list[PrunedPoint] = []
    for point in points:
        try:
            report = predict(point.spec, calibration=calibration)
        except CostError:
            kept.append(point)
            continue
        seconds = report.run_totals["seconds"]
        uplink = report.run_totals["uplink_bytes"]
        if budget_seconds is not None and seconds > budget_seconds:
            pruned.append(
                PrunedPoint(point, "run_seconds", seconds, budget_seconds)
            )
        elif budget_bytes is not None and uplink > budget_bytes:
            pruned.append(
                PrunedPoint(point, "run_uplink_bytes", uplink, budget_bytes)
            )
        else:
            kept.append(point)
    return kept, pruned


def run_sweep(
    spec: RunSpec,
    workers: int | None = None,
    prune_cost_seconds: float | None = None,
    prune_cost_bytes: float | None = None,
) -> SweepResult:
    """Expand and run a sweep spec; returns all grid-point results.

    Every grid point's registry names are validated before anything
    runs, so a typo in one axis value fails fast instead of after the
    preceding points trained.

    Args:
        spec: a :class:`RunSpec` with at least one ``sweep`` axis (a spec
            without axes runs as a single-point grid).
        workers: run children across a process pool of this size
            (sequential when None).  Parallel children return histories
            only -- simulator/dataset handles stay in-process, so
            sequential mode is what experiment post-processing that needs
            the simulator should use.
        prune_cost_seconds: skip grid points whose cost-model predicted
            whole-run wall-clock exceeds this many seconds (see
            ``docs/cost_model.md``); skipped points land in
            :attr:`SweepResult.pruned` and are never executed.
        prune_cost_bytes: same, for predicted whole-run uplink bytes.
    """
    points = expand_sweep(spec)
    for point in points:
        validate_spec_names(point.spec)
    pruned: list[PrunedPoint] = []
    if prune_cost_seconds is not None or prune_cost_bytes is not None:
        points, pruned = _prune_points(
            spec, points, prune_cost_seconds, prune_cost_bytes
        )
        if not points:
            raise SpecError(
                f"cost pruning removed all {len(pruned)} grid points; "
                "raise --prune-cost-seconds/--prune-cost-bytes or shrink "
                "the workload"
            )
    if workers is not None and workers < 1:
        raise SpecError("workers must be at least 1 (or None for sequential)")
    if workers is None or workers == 1 or len(points) == 1:
        # Grid points sharing a dataset section reuse one built
        # federation (training never mutates it; the pre-spec experiment
        # registry relied on the same reuse).
        datasets: dict[str, object] = {}
        results = []
        for point in points:
            key = _dataset_cache_key(point.spec)
            result = run(point.spec, dataset=datasets.get(key))
            if key is not None:
                datasets[key] = result.dataset
            results.append(result)
        return SweepResult(
            base=spec, points=points, results=results, pruned=pruned
        )

    from concurrent.futures import ProcessPoolExecutor

    from repro.report import history_from_dict

    with ProcessPoolExecutor(max_workers=min(workers, len(points))) as pool:
        payloads = list(
            pool.map(
                _run_point_subprocess, [p.spec.to_dict() for p in points]
            )
        )
    results = [
        RunResult(
            spec=point.spec,
            spec_hash=digest,
            history=history_from_dict(payload),
        )
        for point, (payload, digest) in zip(points, payloads)
    ]
    return SweepResult(base=spec, points=points, results=results, pruned=pruned)
