"""Builtin registry entries: the paper's methods, datasets, and models.

Importing this module (which :mod:`repro.api` does lazily) populates the
:mod:`repro.api.registries` tables with every builtin the CLI used to
hardcode.  Third-party extensions register the same way from their own
modules -- see ``docs/api.md`` for the extension guide.

Factory contracts:

- method: ``factory(spec: MethodSpec, crypto: CryptoSpec | None) -> FLMethod``.
  Factories only forward the fields the method consumes (mirroring the
  legacy CLI flag mapping), so unrelated spec fields never perturb a
  method's defaults.
- dataset: ``factory(spec: DatasetSpec, seed: int) -> FederatedDataset``.
- model: ``factory(rng, fed) -> Sequential``.
"""

from __future__ import annotations

from repro.api.registries import (
    register_dataset,
    register_method,
    register_model,
)
from repro.api.spec import CryptoSpec, DatasetSpec, MethodSpec


def _subsampling(spec: MethodSpec) -> float | None:
    """``sample_rate`` normalised: q = 1 means "no per-round Poisson draw"."""
    if spec.sample_rate is None or spec.sample_rate == 1.0:
        return None
    return spec.sample_rate


def _optional(spec: MethodSpec, **names) -> dict:
    """Constructor kwargs for optional fields, included only when set."""
    return {
        ctor_name: getattr(spec, field)
        for ctor_name, field in names.items()
        if getattr(spec, field) is not None
    }


@register_method("default", description="non-private FedAVG baseline (no DP noise)")
def _build_default(spec: MethodSpec, crypto: CryptoSpec | None = None):
    from repro.core import Default

    return Default(
        local_lr=spec.local_lr,
        local_epochs=spec.local_epochs,
        engine=spec.engine,
        **_optional(spec, global_lr="global_lr", batch_size="batch_size"),
    )


@register_method("uldp-naive", description="per-silo DP, naive cross-silo composition")
def _build_uldp_naive(spec: MethodSpec, crypto: CryptoSpec | None = None):
    from repro.core import UldpNaive

    return UldpNaive(
        clip=spec.clip,
        noise_multiplier=spec.sigma,
        local_lr=spec.local_lr,
        local_epochs=spec.local_epochs,
        engine=spec.engine,
        **_optional(spec, global_lr="global_lr", batch_size="batch_size"),
    )


@register_method("uldp-group", description="group-privacy DP-SGD (group size k)")
def _build_uldp_group(spec: MethodSpec, crypto: CryptoSpec | None = None):
    from repro.core import UldpGroup

    return UldpGroup(
        group_size=spec.group_size,
        clip=spec.clip,
        noise_multiplier=spec.sigma,
        local_lr=spec.local_lr,
        local_steps=spec.local_epochs,
        # The legacy CLI's mapping: --batch-size feeds ULDP-GROUP's
        # expected (Poisson) batch size, defaulting to 256.
        expected_batch_size=spec.batch_size or 256,
        group_route=spec.group_route,
        engine=spec.engine,
        **_optional(spec, global_lr="global_lr"),
    )


@register_method("uldp-sgd", description="ULDP-SGD, uniform clipping weights")
def _build_uldp_sgd(spec: MethodSpec, crypto: CryptoSpec | None = None):
    from repro.core import UldpSgd

    return UldpSgd(
        clip=spec.clip,
        noise_multiplier=spec.sigma,
        weighting="uniform",
        user_sample_rate=_subsampling(spec),
        engine=spec.engine,
        **_optional(spec, global_lr="global_lr"),
    )


@register_method("uldp-sgd-w", description="ULDP-SGD, enhanced (Eq. 3) weights")
def _build_uldp_sgd_w(spec: MethodSpec, crypto: CryptoSpec | None = None):
    from repro.core import UldpSgd

    return UldpSgd(
        clip=spec.clip,
        noise_multiplier=spec.sigma,
        weighting="proportional",
        user_sample_rate=_subsampling(spec),
        engine=spec.engine,
        **_optional(spec, global_lr="global_lr"),
    )


def _uldp_avg_kwargs(spec: MethodSpec, weighting: str) -> dict:
    return dict(
        clip=spec.clip,
        noise_multiplier=spec.sigma,
        local_lr=spec.local_lr,
        local_epochs=spec.local_epochs,
        weighting=weighting,
        user_sample_rate=_subsampling(spec),
        batch_size=spec.batch_size,
        engine=spec.engine,
        **_optional(spec, global_lr="global_lr"),
    )


@register_method("uldp-avg", description="ULDP-AVG (Algorithm 3), uniform weights")
def _build_uldp_avg(spec: MethodSpec, crypto: CryptoSpec | None = None):
    from repro.core import UldpAvg

    return UldpAvg(**_uldp_avg_kwargs(spec, "uniform"))


@register_method(
    "uldp-avg-w", description="ULDP-AVG with enhanced (Eq. 3) weighting"
)
def _build_uldp_avg_w(spec: MethodSpec, crypto: CryptoSpec | None = None):
    from repro.core import UldpAvg

    return UldpAvg(**_uldp_avg_kwargs(spec, "proportional"))


@register_method(
    "secure-uldp-avg",
    description="ULDP-AVG-w over Protocol 1 (Paillier secure weighting); "
    "configured by the [crypto] section",
)
def _build_secure_uldp_avg(spec: MethodSpec, crypto: CryptoSpec | None = None):
    from repro.protocol import SecureUldpAvg

    crypto = crypto if crypto is not None else CryptoSpec()
    return SecureUldpAvg(
        clip=spec.clip,
        noise_multiplier=spec.sigma,
        local_lr=spec.local_lr,
        local_epochs=spec.local_epochs,
        user_sample_rate=_subsampling(spec),
        batch_size=spec.batch_size,
        n_max=crypto.n_max,
        paillier_bits=crypto.paillier_bits,
        crypto_backend=crypto.backend,
        protocol_workers=crypto.workers,
        mask_bits=crypto.mask_bits,
        min_survivors=crypto.min_survivors,
        engine=spec.engine,
        **_optional(spec, global_lr="global_lr"),
    )


# -- datasets -----------------------------------------------------------------


def _sizing(spec: DatasetSpec) -> dict:
    kwargs = dict(n_users=spec.users, distribution=spec.distribution)
    if spec.test_records is not None:
        kwargs["n_test"] = spec.test_records
    return kwargs


@register_dataset(
    "creditcard", description="tabular fraud detection, 5 silos, MLP (~4K params)"
)
def _build_creditcard(spec: DatasetSpec, seed: int):
    from repro.data import build_creditcard_benchmark

    return build_creditcard_benchmark(
        n_silos=spec.silos, n_records=spec.records, seed=seed, **_sizing(spec)
    )


@register_dataset("mnist", description="10-class images, 5 silos, CNN (~20K params)")
def _build_mnist(spec: DatasetSpec, seed: int):
    from repro.data import build_mnist_benchmark

    return build_mnist_benchmark(
        n_silos=spec.silos,
        n_records=spec.records,
        non_iid=spec.non_iid,
        seed=seed,
        **_sizing(spec),
    )


@register_dataset(
    "heartdisease",
    description="4 fixed hospital silos, logistic model",
    fixed_silos=True,
)
def _build_heartdisease(spec: DatasetSpec, seed: int):
    from repro.data import build_heartdisease_benchmark

    # Fixed-silo benchmark: silos/records/test_records are part of the
    # benchmark definition and deliberately not forwarded.
    return build_heartdisease_benchmark(
        n_users=spec.users, distribution=spec.distribution, seed=seed
    )


@register_dataset(
    "tcgabrca",
    description="6 fixed silos, survival data, Cox model / C-index",
    fixed_silos=True,
)
def _build_tcgabrca(spec: DatasetSpec, seed: int):
    from repro.data import build_tcgabrca_benchmark

    return build_tcgabrca_benchmark(
        n_users=spec.users, distribution=spec.distribution, seed=seed
    )


# -- models -------------------------------------------------------------------


@register_model("creditcard-mlp", description="2-hidden-layer MLP (~4K params)")
def _model_creditcard_mlp(rng, fed):
    from repro.nn.model import build_creditcard_mlp

    return build_creditcard_mlp(rng, in_features=fed.test_x.shape[1])


@register_model("mnist-cnn", description="small CNN for image benchmarks")
def _model_mnist_cnn(rng, fed):
    from repro.nn.model import build_mnist_cnn

    return build_mnist_cnn(rng, image_size=fed.test_x.shape[-1])


@register_model("logistic", description="logistic regression")
def _model_logistic(rng, fed):
    from repro.nn.model import build_logistic

    return build_logistic(rng, in_features=fed.test_x.shape[1])


@register_model("cox-linear", description="linear Cox proportional-hazards model")
def _model_cox_linear(rng, fed):
    from repro.nn.model import build_cox_linear

    return build_cox_linear(rng, in_features=fed.test_x.shape[1])
