"""The single entrypoint: ``repro.run(spec) -> RunResult``.

Resolves a validated :class:`repro.api.spec.RunSpec` against the
registries and executes it:

- **train mode** (no ``[sim]`` section): build the dataset, method, and
  (optionally) model through the registries, run a
  :class:`repro.core.Trainer`, and return its history.
- **simulate mode** (``[sim]`` present): build the named scenario with the
  spec's method and privacy parameters, run it (checkpointing when
  ``sim.checkpoint_dir`` is set), and return the simulator's history.

Either way the history is stamped with the spec snapshot and its
canonical :func:`repro.api.spec.spec_hash`, and simulation checkpoints
carry the same pair so ``--resume`` can refuse a tampered or mismatched
spec (:func:`verify_checkpoint_spec`).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.api import builtin  # noqa: F401  (populates the registries)
from repro.api.registries import DATASETS, METHODS, MODELS
from repro.api.spec import RunSpec, SpecError

#: Seed-stream tag separating registry-built model inits from the
#: trainer's stream ("auto" models keep consuming the trainer RNG).
_MODEL_STREAM = 0x30DE1


@dataclass
class RunResult:
    """Outcome of one :func:`run` call."""

    spec: RunSpec
    spec_hash: str
    history: object  # repro.core.trainer.TrainingHistory
    dataset: object | None = None  # repro.data.FederatedDataset
    simulator: object | None = None  # repro.sim.FederationSimulator (sim mode)

    def table(self) -> str:
        """One-row comparison table of the run's history."""
        from repro.report import comparison_table

        return comparison_table([self.history])

    def summary(self) -> str:
        """One-line summary (method, final metric, epsilon, spec hash)."""
        return f"{self.history.summary()} spec={self.spec_hash}"


def validate_spec_names(spec: RunSpec) -> None:
    """Resolve every registry name the spec references (without running).

    Raises :class:`repro.api.registries.UnknownNameError` -- listing valid
    names plus a nearest-match suggestion -- for an unknown method,
    dataset, model, or scenario.  ``repro validate-config`` calls this on
    every spec file (and every expanded sweep point).
    """
    METHODS.entry(spec.method.name)
    if spec.model.name != "auto":
        MODELS.entry(spec.model.name)
    if spec.is_simulation:
        import repro.sim.scenarios  # noqa: F401  (registers the builtins)
        from repro.api.registries import SCENARIOS

        SCENARIOS.entry(spec.sim.scenario)
    else:
        DATASETS.entry(spec.dataset.name)


def build_dataset(spec: RunSpec):
    """The spec's federation (train mode), via the dataset registry."""
    if spec.dataset is None:
        raise SpecError("spec has no dataset section (simulation mode)")
    seed = spec.dataset.seed if spec.dataset.seed is not None else spec.seed
    return DATASETS.get(spec.dataset.name)(spec.dataset, seed)


def build_method(spec: RunSpec):
    """The spec's FL method, via the method registry."""
    return METHODS.get(spec.method.name)(spec.method, spec.crypto)


def build_trainer(spec: RunSpec, fed=None):
    """A ready-to-run :class:`repro.core.Trainer` for a train-mode spec.

    The construction order and seeds mirror the legacy CLI exactly
    (dataset from ``dataset.seed``/``seed``, trainer RNG from ``seed``),
    which is what makes shim-generated specs bit-identical oracles.
    """
    from repro.core import Trainer

    if spec.is_simulation:
        raise SpecError("spec has a [sim] section; use build_simulator()")
    if fed is None:
        fed = build_dataset(spec)
    method = build_method(spec)
    model = None
    if spec.model.name != "auto":
        build = MODELS.get(spec.model.name)
        model = build(np.random.default_rng([_MODEL_STREAM, spec.seed]), fed)
    rounds = spec.rounds if spec.rounds is not None else 5
    engine = None
    if spec.engine is not None:
        from repro.core.engine import EngineConfig

        engine = EngineConfig(
            workers=spec.engine.workers,
            shard_size=spec.engine.shard_size,
            backend=spec.engine.backend,
        )
    return Trainer(
        fed,
        method,
        rounds=rounds,
        model=model,
        delta=spec.privacy.delta,
        seed=spec.seed,
        eval_every=spec.eval_every,
        compression=spec.compression,
        engine=engine,
    )


def build_simulator(spec: RunSpec):
    """A ready-to-run simulator for a simulate-mode spec (not yet run)."""
    from repro.sim.scenarios import build_scenario

    if not spec.is_simulation:
        raise SpecError("spec has no [sim] section; use build_trainer()")
    return build_scenario(
        spec.sim.scenario,
        scale=spec.sim.scale,
        seed=spec.seed,
        rounds=spec.rounds,
        method=build_method(spec),
        delta=spec.privacy.delta,
        eval_every=spec.eval_every,
    )


def _stamp(history, spec: RunSpec) -> str:
    """Attach the spec snapshot + canonical hash to a history; returns hash."""
    digest = spec.hash()
    history.spec = spec.to_dict()
    history.spec_hash = digest
    return digest


def checkpoint_extra(spec: RunSpec) -> dict:
    """The checkpoint ``extra`` payload for a simulate-mode spec."""
    return {
        "scenario": spec.sim.scenario,
        "scale": spec.sim.scale,
        "seed": spec.seed,
        "rounds": spec.rounds,
        "spec": spec.to_dict(),
        "spec_hash": spec.hash(),
    }


def verify_checkpoint_spec(extra: dict) -> RunSpec | None:
    """Validate a checkpoint's stored spec snapshot against its hash.

    Returns the rebuilt :class:`RunSpec` (or None for pre-spec
    checkpoints).  Raises :class:`SpecError` when the snapshot no longer
    hashes to the recorded value -- i.e. the checkpoint was tampered with
    or written by an incompatible schema.
    """
    if not extra or "spec" not in extra:
        return None
    spec = RunSpec.from_dict(extra["spec"])
    recorded = extra.get("spec_hash")
    actual = spec.hash()
    if recorded != actual:
        raise SpecError(
            f"checkpoint spec hash mismatch: recorded {recorded!r} but the "
            f"stored snapshot hashes to {actual!r}; refusing to resume a "
            "run whose configuration was modified"
        )
    return spec


def resolve_trace_path(spec: RunSpec) -> Path:
    """Where this spec's ``trace.jsonl`` goes: the explicit
    ``obs.trace_path`` if set, else next to checkpoints, else the
    working directory."""
    if spec.obs is not None and spec.obs.trace_path:
        return Path(spec.obs.trace_path)
    if spec.sim is not None and spec.sim.checkpoint_dir:
        return Path(spec.sim.checkpoint_dir) / "trace.jsonl"
    return Path("trace.jsonl")


@contextlib.contextmanager
def obs_session(spec: RunSpec, mode: str | None = None):
    """Install the spec's observability for the duration of one run.

    With ``[obs]`` absent or disabled this yields immediately and
    changes nothing (the process keeps the no-op recorder).  Enabled, it
    builds a :class:`repro.obs.JsonlTraceRecorder` at
    :func:`resolve_trace_path`, installs it process-wide, opens the root
    ``run`` span (name, spec hash, mode), and -- when
    ``obs.metrics_port`` is set -- serves ``GET /metrics`` on that side
    port.  Everything is torn down (recorder restored + flushed, httpd
    stopped) on exit, error or not.
    """
    if spec.obs is None or not spec.obs.enabled:
        yield None
        return
    from repro.obs import JsonlTraceRecorder, use_recorder
    from repro.obs.httpd import start_metrics_server

    recorder = JsonlTraceRecorder(
        resolve_trace_path(spec),
        sample_rate=spec.obs.sample_rate,
        run_id=spec.name,
    )
    metrics_server = None
    if spec.obs.metrics_port is not None:
        metrics_server = start_metrics_server(spec.obs.metrics_port)
    try:
        with use_recorder(recorder):
            with recorder.span(
                "run", kind="run", spec_name=spec.name,
                spec_hash=spec.hash(),
                mode=mode or ("simulate" if spec.is_simulation else "train"),
            ):
                yield recorder
    finally:
        if metrics_server is not None:
            metrics_server.close()
        recorder.close()


def run(spec: RunSpec, *, dataset=None) -> RunResult:
    """Execute one spec end to end; the single programmatic entrypoint.

    ``dataset`` optionally supplies an already-built federation for a
    train-mode spec whose ``dataset`` section (and resolved seed) it
    matches -- the sweep runner uses this to build each distinct
    federation once per grid instead of once per point.  The caller is
    responsible for the match; when in doubt, omit it.
    """
    if spec.sweep:
        raise SpecError(
            "spec declares sweep axes; use repro.api.run_sweep() "
            "(or the `repro sweep` command) to expand the grid"
        )
    with obs_session(spec):
        if spec.is_simulation:
            return _run_simulation(spec)
        return _run_training(spec, fed=dataset)


def _run_training(spec: RunSpec, fed=None) -> RunResult:
    trainer = build_trainer(spec, fed=fed)
    digest = _stamp(trainer.history, spec)
    history = trainer.run()
    return RunResult(
        spec=spec, spec_hash=digest, history=history, dataset=trainer.fed
    )


def _run_simulation(spec: RunSpec) -> RunResult:
    from repro.sim.scenarios import run_simulator_with_checkpoints

    sim = build_simulator(spec)
    digest = _stamp(sim.history, spec)
    run_simulator_with_checkpoints(
        sim,
        spec.sim.checkpoint_dir,
        spec.sim.checkpoint_every,
        extra=checkpoint_extra(spec),
    )
    return RunResult(
        spec=spec, spec_hash=digest, history=sim.history,
        dataset=sim.fed, simulator=sim,
    )
