"""The declarative run API: one validated config tree, one entrypoint.

- :class:`RunSpec` (+ ``DatasetSpec``/``ModelSpec``/``MethodSpec``/
  ``PrivacySpec``/``SimSpec``/``CryptoSpec``, reusing
  :class:`repro.compress.CompressionSpec`) -- a typed, serialisable spec
  tree with exact dict/JSON/TOML round-trips and a canonical content hash.
- :func:`run` -- execute one spec (training or simulation), returning a
  :class:`RunResult` whose history is stamped with the spec + hash.
- :func:`run_sweep` / :func:`expand_sweep` -- grid sweeps over axis lists.
- :mod:`repro.api.registries` -- decorator-based named registries
  (``@register_method`` and friends) that third-party code extends
  without touching core.

Names resolve lazily (PEP 562) so that low-level packages can import
``repro.api.registries`` without dragging in the full stack.

Usage::

    from repro.api import RunSpec, run

    spec = RunSpec.from_file("exp.toml")
    result = run(spec)
    print(result.table())
"""

from __future__ import annotations

# name -> defining submodule, resolved on first attribute access.
_LAZY_EXPORTS = {
    "CompressionSpec": "repro.compress",
    "CostSpec": "repro.api.spec",
    "CryptoSpec": "repro.api.spec",
    "DatasetSpec": "repro.api.spec",
    "MethodSpec": "repro.api.spec",
    "ModelSpec": "repro.api.spec",
    "ObsSpec": "repro.api.spec",
    "PrivacySpec": "repro.api.spec",
    "RunSpec": "repro.api.spec",
    "SimSpec": "repro.api.spec",
    "SpecError": "repro.api.spec",
    "SweepPoint": "repro.api.spec",
    "apply_overrides": "repro.api.spec",
    "expand_sweep": "repro.api.spec",
    "load_spec_tree": "repro.api.spec",
    "parse_assignment": "repro.api.spec",
    "spec_hash": "repro.api.spec",
    "validate_path": "repro.api.spec",
    "RunResult": "repro.api.runner",
    "build_dataset": "repro.api.runner",
    "build_method": "repro.api.runner",
    "build_simulator": "repro.api.runner",
    "build_trainer": "repro.api.runner",
    "checkpoint_extra": "repro.api.runner",
    "obs_session": "repro.api.runner",
    "run": "repro.api.runner",
    "verify_checkpoint_spec": "repro.api.runner",
    "SweepResult": "repro.api.sweep",
    "run_sweep": "repro.api.sweep",
    "Registry": "repro.api.registries",
    "UnknownNameError": "repro.api.registries",
    "register_dataset": "repro.api.registries",
    "register_experiment": "repro.api.registries",
    "register_method": "repro.api.registries",
    "register_model": "repro.api.registries",
    "register_scenario": "repro.api.registries",
    "register_sparsifier": "repro.api.registries",
}

__all__ = sorted(_LAZY_EXPORTS)


def __getattr__(name):
    if name in _LAZY_EXPORTS:
        import importlib

        module = importlib.import_module(_LAZY_EXPORTS[name])
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro.api' has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
