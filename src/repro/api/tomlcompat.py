"""Minimal TOML round-trip for :class:`repro.api.RunSpec` trees.

The stdlib gained :mod:`tomllib` in Python 3.11 but the project supports
3.10 (and never writes TOML through the stdlib at any version), so this
module provides:

- :func:`dumps` -- serialise a plain dict tree (str/int/float/bool keys
  and values, lists, nested dicts) to TOML.  Nested dicts become
  ``[section]`` tables; dicts inside lists become inline tables.
- :func:`loads` -- parse TOML text: :mod:`tomllib` when available,
  otherwise :func:`loads_fallback`.
- :func:`loads_fallback` -- a dependency-free parser covering the subset
  :func:`dumps` emits (tables, dotted/quoted keys, strings, numbers,
  booleans, arrays -- possibly multi-line -- and inline tables).  It is
  exercised directly by the test suite so 3.10 behaviour never drifts.

``None`` values are omitted on write (TOML has no null); every optional
spec field defaults to ``None``, so omission round-trips exactly.
"""

from __future__ import annotations

import json
import re

try:  # Python >= 3.11
    import tomllib as _tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised on 3.10 CI
    _tomllib = None

_BARE_KEY = re.compile(r"^[A-Za-z0-9_-]+$")


# -- writing ------------------------------------------------------------------


def _format_key(key: str) -> str:
    return key if _BARE_KEY.match(key) else json.dumps(key)


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        # repr keeps the shortest float round-tripping to the same IEEE-754
        # value; TOML requires a decimal point or exponent.
        text = repr(value)
        if "." not in text and "e" not in text and "inf" not in text and "nan" not in text:
            text += ".0"
        return text
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_format_value(v) for v in value) + "]"
    if isinstance(value, dict):
        items = ", ".join(
            f"{_format_key(k)} = {_format_value(v)}"
            for k, v in value.items()
            if v is not None
        )
        return "{" + items + "}"
    raise TypeError(f"cannot serialise {type(value).__name__} to TOML")


def dumps(tree: dict, header: str | None = None) -> str:
    """Serialise a dict tree to TOML text (``None`` values omitted)."""
    lines: list[str] = []
    if header:
        lines.extend(f"# {line}".rstrip() for line in header.splitlines())
        lines.append("")
    _dump_table(tree, prefix=(), lines=lines)
    return "\n".join(lines).strip("\n") + "\n"


def _dump_table(table: dict, prefix: tuple[str, ...], lines: list[str]) -> None:
    scalars = {
        k: v for k, v in table.items() if v is not None and not isinstance(v, dict)
    }
    subtables = {k: v for k, v in table.items() if isinstance(v, dict)}
    if prefix and (scalars or not subtables):
        if lines and lines[-1] != "":
            lines.append("")
        lines.append("[" + ".".join(_format_key(p) for p in prefix) + "]")
    for key, value in scalars.items():
        lines.append(f"{_format_key(key)} = {_format_value(value)}")
    for key, value in subtables.items():
        _dump_table(value, prefix + (key,), lines)


# -- parsing ------------------------------------------------------------------


def loads(text: str) -> dict:
    """Parse TOML text (stdlib :mod:`tomllib` when available)."""
    if _tomllib is not None:
        return _tomllib.loads(text)
    return loads_fallback(text)


def loads_fallback(text: str) -> dict:
    """Parse the TOML subset :func:`dumps` emits, without :mod:`tomllib`."""
    root: dict = {}
    current = root
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = _strip_comment(lines[i]).strip()
        i += 1
        if not line:
            continue
        if line.startswith("["):
            if not line.endswith("]") or line.startswith("[["):
                raise ValueError(f"unsupported TOML table header: {line!r}")
            path = _parse_key_path(line[1:-1])
            current = root
            for part in path:
                current = current.setdefault(part, {})
                if not isinstance(current, dict):
                    raise ValueError(f"table {'.'.join(path)!r} clashes with a value")
            continue
        if "=" not in line:
            raise ValueError(f"cannot parse TOML line: {line!r}")
        key_text, _, value_text = line.partition("=")
        value_text = value_text.strip()
        # Multi-line arrays/inline tables: accumulate until brackets balance.
        while not _balanced(value_text):
            if i >= len(lines):
                raise ValueError(f"unterminated value for key {key_text.strip()!r}")
            value_text += " " + _strip_comment(lines[i]).strip()
            i += 1
        path = _parse_key_path(key_text.strip())
        target = current
        for part in path[:-1]:
            target = target.setdefault(part, {})
        target[path[-1]] = _parse_value(value_text)
    return root


def _strip_comment(line: str) -> str:
    out: list[str] = []
    in_string = False
    for ch in line:
        if ch == '"' and (not out or out[-1] != "\\"):
            in_string = not in_string
        if ch == "#" and not in_string:
            break
        out.append(ch)
    return "".join(out)


def _balanced(text: str) -> bool:
    depth = 0
    in_string = False
    prev = ""
    for ch in text:
        if ch == '"' and prev != "\\":
            in_string = not in_string
        elif not in_string:
            if ch in "[{":
                depth += 1
            elif ch in "]}":
                depth -= 1
        prev = ch
    return depth == 0 and not in_string


def _parse_key_path(text: str) -> list[str]:
    """Split a (possibly quoted) dotted key: ``a."b.c".d`` -> [a, b.c, d]."""
    parts: list[str] = []
    buf: list[str] = []
    in_string = False
    for ch in text:
        if ch == '"':
            in_string = not in_string
            continue
        if ch == "." and not in_string:
            parts.append("".join(buf).strip())
            buf = []
            continue
        buf.append(ch)
    parts.append("".join(buf).strip())
    if in_string or any(not p for p in parts):
        raise ValueError(f"cannot parse TOML key: {text!r}")
    return parts


def _parse_value(text: str):
    text = text.strip()
    if not text:
        raise ValueError("empty TOML value")
    if text.startswith('"'):
        return json.loads(text)
    if text == "true":
        return True
    if text == "false":
        return False
    if text.startswith("["):
        return _parse_array(text)
    if text.startswith("{"):
        return _parse_inline_table(text)
    try:
        if re.fullmatch(r"[+-]?\d+", text):
            return int(text)
        return float(text)
    except ValueError:
        raise ValueError(f"cannot parse TOML value: {text!r}") from None


def _split_top_level(text: str) -> list[str]:
    """Split on commas not nested inside brackets/braces/strings."""
    items: list[str] = []
    buf: list[str] = []
    depth = 0
    in_string = False
    prev = ""
    for ch in text:
        if ch == '"' and prev != "\\":
            in_string = not in_string
        elif not in_string:
            if ch in "[{":
                depth += 1
            elif ch in "]}":
                depth -= 1
            elif ch == "," and depth == 0:
                items.append("".join(buf))
                buf = []
                prev = ch
                continue
        buf.append(ch)
        prev = ch
    tail = "".join(buf).strip()
    if tail:
        items.append(tail)
    return [item.strip() for item in items if item.strip()]


def _parse_array(text: str) -> list:
    if not text.endswith("]"):
        raise ValueError(f"unterminated TOML array: {text!r}")
    return [_parse_value(item) for item in _split_top_level(text[1:-1])]


def _parse_inline_table(text: str) -> dict:
    if not text.endswith("}"):
        raise ValueError(f"unterminated TOML inline table: {text!r}")
    table: dict = {}
    for item in _split_top_level(text[1:-1]):
        key_text, eq, value_text = item.partition("=")
        if not eq:
            raise ValueError(f"cannot parse inline-table item: {item!r}")
        path = _parse_key_path(key_text.strip())
        target = table
        for part in path[:-1]:
            target = target.setdefault(part, {})
        target[path[-1]] = _parse_value(value_text.strip())
    return table
