"""Stochastic b-bit quantization (QSGD-style symmetric levels).

A vector is scaled by its max magnitude onto ``L = 2^(b-1) - 1`` symmetric
integer levels; each coordinate rounds *stochastically* to a neighbouring
level, which makes dequantization unbiased (``E[deq(q(v))] = v``) with
per-coordinate error at most ``scale / L``.  The wire format is one float64
scale plus ``b`` bits per coordinate (sign included in the level).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compress.spec import MAX_QUANTIZE_BITS, MIN_QUANTIZE_BITS


@dataclass(frozen=True)
class QuantizedBlock:
    """One quantized value block: shared scale + signed integer levels."""

    scale: float
    levels: np.ndarray
    bits: int

    @property
    def nbytes(self) -> int:
        """Wire size: float64 scale + ``bits`` bits per level, packed."""
        return 8 + (self.levels.size * self.bits + 7) // 8


def quantize_stochastic(
    values: np.ndarray, bits: int, rng: np.random.Generator
) -> QuantizedBlock:
    """Quantize ``values`` onto ``2^(bits-1) - 1`` symmetric levels.

    Stochastic rounding: a coordinate at fractional level ``l + f`` rounds
    up with probability ``f``, making the scheme unbiased.  All randomness
    comes from ``rng`` (the compressor's private stream).
    """
    if not MIN_QUANTIZE_BITS <= bits <= MAX_QUANTIZE_BITS:
        raise ValueError(
            f"bits must lie in [{MIN_QUANTIZE_BITS}, {MAX_QUANTIZE_BITS}]"
        )
    v = np.asarray(values, dtype=np.float64).ravel()
    if v.size and not np.all(np.isfinite(v)):
        raise ValueError("cannot quantize non-finite values")
    n_levels = (1 << (bits - 1)) - 1
    scale = float(np.max(np.abs(v), initial=0.0))
    if scale == 0.0:
        return QuantizedBlock(0.0, np.zeros(v.size, dtype=np.int64), bits)
    scaled = np.abs(v) / scale * n_levels
    lower = np.floor(scaled)
    round_up = rng.random(v.size) < (scaled - lower)
    magnitude = lower + round_up
    levels = (np.sign(v) * magnitude).astype(np.int64)
    return QuantizedBlock(scale, levels, bits)


def dequantize(block: QuantizedBlock) -> np.ndarray:
    """Reconstruct float64 values from a :class:`QuantizedBlock`."""
    n_levels = (1 << (block.bits - 1)) - 1
    if block.scale == 0.0:
        return np.zeros(block.levels.size)
    return block.levels.astype(np.float64) / n_levels * block.scale
