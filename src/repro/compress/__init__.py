"""Communication-efficient update compression for ULDP-FL rounds.

Cross-silo rounds ship dense float64 deltas; after the vectorized engine
(PR 1) and the fast crypto backend (PR 2) removed the compute walls,
communication is the scaling cost.  This package compresses the wire
payloads -- strictly **post-noise** on the uplink and on the server's
broadcast for the downlink, so every epsilon guarantee is preserved by
post-processing:

- :mod:`repro.compress.spec` -- :class:`CompressionSpec`, the immutable
  recipe (sparsifier, fraction, quantization width, error feedback,
  downlink, private seed);
- :mod:`repro.compress.sparsify` -- top-k / random-k selection + scatter;
- :mod:`repro.compress.quantize` -- unbiased stochastic b-bit quantization;
- :mod:`repro.compress.pipeline` -- :class:`UpdateCompressor`, the
  stateful per-federation object (per-silo error-feedback residuals,
  private RNG stream, byte accounting, checkpointable state).

``CompressionSpec()`` is the identity and reproduces the uncompressed
trainer bit for bit (oracle-tested), mirroring the ``engine=`` and
``crypto_backend=`` seams.
"""

from repro.compress.pipeline import (
    DOWNLINK_SLOT,
    CompressedPayload,
    UpdateCompressor,
)
from repro.compress.quantize import QuantizedBlock, dequantize, quantize_stochastic
from repro.compress.sparsify import randk_indices, scatter, topk_indices
from repro.compress.spec import SPARSIFIERS, CompressionSpec

__all__ = [
    "DOWNLINK_SLOT",
    "CompressedPayload",
    "UpdateCompressor",
    "QuantizedBlock",
    "dequantize",
    "quantize_stochastic",
    "randk_indices",
    "scatter",
    "topk_indices",
    "SPARSIFIERS",
    "CompressionSpec",
]
