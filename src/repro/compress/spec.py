"""The :class:`CompressionSpec`: one immutable recipe for update compression.

A spec describes *what* is compressed on the wire -- sparsification family
and kept fraction, stochastic quantization width, error feedback, and
whether the server's broadcast (downlink) is compressed too -- while the
stateful machinery (per-silo residual accumulators, the compressor's
private RNG stream) lives in :class:`repro.compress.pipeline.UpdateCompressor`.

The default spec is the identity: ``CompressionSpec()`` (equivalently
``CompressionSpec.none()``) changes no bytes and no bits of the training
trajectory -- it only enables byte accounting -- which is what makes it the
oracle seam mirroring ``engine="loop"`` and ``crypto_backend="reference"``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: The builtin sparsification families: dense, k largest-magnitude,
#: shared random k.  Validation consults the live
#: :data:`repro.api.registries.SPARSIFIERS` registry, so third-party
#: families registered via ``@register_sparsifier`` are accepted too.
SPARSIFIERS = ("none", "topk", "randk")


def _valid_sparsifiers() -> tuple[str, ...]:
    """``"none"`` plus every registered sparsifier family."""
    from repro.api.registries import SPARSIFIERS as registry

    names = registry.names()
    return ("none", *names) if names else SPARSIFIERS

#: Quantization widths must leave at least one magnitude bit beside the
#: sign and stay within the int16 wire format.
MIN_QUANTIZE_BITS, MAX_QUANTIZE_BITS = 2, 16


@dataclass(frozen=True)
class CompressionSpec:
    """What one federation ships on the wire each round.

    Attributes:
        sparsify: one of :data:`SPARSIFIERS`.  ``"topk"`` keeps the k
            largest-magnitude coordinates of each (post-noise) payload;
            ``"randk"`` keeps a random support drawn from the compressor's
            private RNG -- the only family the secure protocol admits,
            because its support is data-independent and shared by every
            silo (see :mod:`repro.protocol.secure_method`).
        fraction: kept fraction of coordinates, ``k = ceil(fraction * d)``.
        quantize_bits: stochastic b-bit quantization of the surviving
            values (QSGD-style symmetric levels), or None for float64.
        error_feedback: accumulate what compression discarded into a
            per-silo residual added to the next round's payload (EF-SGD);
            plaintext path only -- residuals never leave the silo.
        downlink: also compress the server's broadcast model update (with
            a server-side residual accumulator when ``error_feedback``).
        seed: seed of the compressor's *private* RNG stream.  Kept apart
            from the trainer RNG so an uncompressed and a compressed run
            draw identical training noise -- the post-processing-invariance
            tests rely on this.
        index_bytes: wire cost of one coordinate index (4 = uint32,
            enough for models up to 4.3e9 parameters).
    """

    sparsify: str = "none"
    fraction: float = 1.0
    quantize_bits: int | None = None
    error_feedback: bool = False
    downlink: bool = False
    seed: int = 0
    index_bytes: int = 4

    def __post_init__(self):
        valid = _valid_sparsifiers()
        if self.sparsify not in valid:
            from repro.api.registries import suggest

            raise ValueError(
                f"sparsify must be one of {valid}"
                f"{suggest(self.sparsify, list(valid))}"
            )
        if not 0 < self.fraction <= 1:
            raise ValueError("kept fraction must lie in (0, 1]")
        if self.quantize_bits is not None and not (
            MIN_QUANTIZE_BITS <= self.quantize_bits <= MAX_QUANTIZE_BITS
        ):
            raise ValueError(
                f"quantize_bits must lie in "
                f"[{MIN_QUANTIZE_BITS}, {MAX_QUANTIZE_BITS}]"
            )
        if self.index_bytes < 1:
            raise ValueError("index_bytes must be positive")
        if self.is_identity and (self.error_feedback or self.downlink):
            # Both flags silently no-op without a lossy stage -- reject the
            # combination rather than let the caller believe it is active.
            raise ValueError(
                "error_feedback/downlink have no effect on an identity "
                "spec; add a sparsifier or quantize_bits"
            )

    @classmethod
    def none(cls) -> "CompressionSpec":
        """The identity spec: dense float64, byte accounting only."""
        return cls()

    @property
    def is_identity(self) -> bool:
        """Whether compression changes no payload (pure byte accounting)."""
        return self.sparsify == "none" and self.quantize_bits is None

    def keep_count(self, dim: int) -> int:
        """Coordinates surviving sparsification of a ``dim``-vector."""
        if dim < 1:
            raise ValueError("dimension must be positive")
        if self.sparsify == "none":
            return dim
        return max(1, min(dim, math.ceil(self.fraction * dim)))

    def payload_bytes(self, dim: int) -> int:
        """Analytic wire size of one compressed ``dim``-vector payload.

        Dense float64 costs ``8 * dim``; a sparse payload costs
        ``index_bytes`` per surviving index plus the value bytes; a
        quantized block costs one float64 scale plus ``ceil(k * b / 8)``
        packed level bytes.  Matches what the pipeline reports per round.
        """
        k = self.keep_count(dim)
        if self.quantize_bits is not None:
            value_bytes = 8 + (k * self.quantize_bits + 7) // 8
        else:
            value_bytes = 8 * k
        if self.sparsify == "none":
            return value_bytes
        return k * self.index_bytes + value_bytes
