"""Sparsification primitives: top-k and random-k coordinate selection.

Both selectors return *sorted* index arrays so the wire format (and the
scatter that undoes it) is canonical regardless of magnitude order, and so
the secure path's shared support is identical on every silo.

The builtin families register under :data:`repro.api.registries.SPARSIFIERS`
(the ``@register_sparsifier`` seam); :class:`repro.compress.pipeline.
UpdateCompressor` dispatches support selection through that registry, so a
third-party sparsifier -- any ``(vec, k, rng) -> sorted indices`` callable
-- plugs into ``CompressionSpec(sparsify="<name>")`` without touching this
package.  Registrations marked ``data_independent=True`` select their
support without looking at the payload (a requirement for pre-noise use).
"""

from __future__ import annotations

import numpy as np

from repro.api.registries import register_sparsifier


def topk_indices(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest-magnitude coordinates (sorted).

    Ties break deterministically toward the lower index (stable sort on
    descending magnitude), so repeated runs -- and both training engines --
    select identical supports.
    """
    v = np.asarray(values, dtype=np.float64).ravel()
    if not 1 <= k <= v.size:
        raise ValueError("k must lie in [1, len(values)]")
    if k == v.size:
        return np.arange(v.size, dtype=np.int64)
    order = np.argsort(-np.abs(v), kind="stable")
    return np.sort(order[:k]).astype(np.int64)


def randk_indices(dim: int, k: int, rng: np.random.Generator) -> np.ndarray:
    """A uniform random ``k``-subset of ``[0, dim)`` (sorted).

    Data-independent by construction -- the only sparsifier admissible
    *before* noise (the secure path) without a privacy argument about the
    support itself.
    """
    if not 1 <= k <= dim:
        raise ValueError("k must lie in [1, dim]")
    return np.sort(rng.choice(dim, size=k, replace=False)).astype(np.int64)


@register_sparsifier(
    "topk",
    description="k largest-magnitude coordinates (post-noise only)",
    data_independent=False,
)
def _select_topk(vec: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    return topk_indices(vec, k)


@register_sparsifier(
    "randk",
    description="uniform random k-subset from the compressor's private RNG",
    data_independent=True,
)
def _select_randk(vec: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    return randk_indices(len(vec), k, rng)


def scatter(indices: np.ndarray, values: np.ndarray, dim: int) -> np.ndarray:
    """Dense ``dim``-vector with ``values`` at ``indices``, zeros elsewhere."""
    indices = np.asarray(indices, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    if indices.shape != values.shape:
        raise ValueError("indices and values must have matching shapes")
    if indices.size and (indices.min() < 0 or indices.max() >= dim):
        raise ValueError("indices out of range")
    dense = np.zeros(dim)
    dense[indices] = values
    return dense
