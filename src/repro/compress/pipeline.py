"""The stateful compression pipeline: residuals, RNG stream, byte ledger.

:class:`UpdateCompressor` is the per-federation object that applies a
:class:`repro.compress.spec.CompressionSpec` to wire payloads.  It owns

- one **residual accumulator per silo** (plus one for the server's
  downlink broadcast) implementing error feedback: what sparsification
  and quantization discard this round is added back to the same silo's
  payload next round, so the compression error telescopes instead of
  accumulating;
- a **private RNG stream** (random-k supports, stochastic rounding) kept
  separate from the trainer RNG, so compressed and uncompressed runs draw
  bit-identical training noise;
- the **byte accounting** reported per payload, which
  :class:`repro.core.trainer.TrainingHistory` records per round.

Compression is applied strictly **post-noise**: the payloads handed in
are already noise-protected releases, so everything here is
post-processing and the privacy accounting is untouched (the accountant
sees the exact same calls; asserted by the invariance tests).

The compressor's dynamic state (residuals + RNG) serialises through
:meth:`UpdateCompressor.state_dict` so simulations with compression
checkpoint/resume bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compress.quantize import dequantize, quantize_stochastic
from repro.compress.sparsify import randk_indices, scatter
from repro.compress.spec import CompressionSpec

#: Seed-sequence tag separating the compressor's RNG stream from training
#: and from the simulation scheduler.
_COMPRESS_STREAM = 0xC0DEC

#: Residual slot of the server's downlink broadcast.
DOWNLINK_SLOT = -1


@dataclass(frozen=True)
class CompressedPayload:
    """One compressed wire payload, already decompressed for aggregation.

    Attributes:
        dense: the receiver-side reconstruction (what enters the sum).
        nbytes: wire size of the compressed form.
        kept: surviving coordinate count (``dim`` when dense).
    """

    dense: np.ndarray
    nbytes: int
    kept: int


class UpdateCompressor:
    """Applies one :class:`CompressionSpec` across a federation's links."""

    def __init__(self, spec: CompressionSpec, n_silos: int, dim: int):
        if n_silos < 1:
            raise ValueError("need at least one silo")
        if dim < 1:
            raise ValueError("dimension must be positive")
        self.spec = spec
        self.n_silos = n_silos
        self.dim = dim
        self.rng = np.random.default_rng([spec.seed, _COMPRESS_STREAM])
        #: Residual accumulators, keyed by silo id (DOWNLINK_SLOT = server).
        self._residuals: dict[int, np.ndarray] = {}

    # -- compression ---------------------------------------------------------

    def compress(self, slot: int, vector: np.ndarray) -> CompressedPayload:
        """Compress one payload through the slot's error-feedback loop.

        Order of operations: add the slot's residual (error feedback),
        sparsify, quantize the survivors, store the new residual
        (input minus reconstruction), return the reconstruction + bytes.
        """
        spec = self.spec
        vec = np.asarray(vector, dtype=np.float64)
        if vec.ndim != 1:
            raise ValueError("payload must be a flat vector")
        if spec.error_feedback:
            residual = self._residuals.get(slot)
            if residual is not None:
                vec = vec + residual
        dim = vec.size
        if spec.sparsify == "none":
            indices = None
            survivors = vec
        else:
            from repro.api.registries import SPARSIFIERS

            k = spec.keep_count(dim)
            select = SPARSIFIERS.get(spec.sparsify)
            indices = np.asarray(select(vec, k, self.rng), dtype=np.int64)
            survivors = vec[indices]
        if spec.quantize_bits is not None:
            block = quantize_stochastic(survivors, spec.quantize_bits, self.rng)
            sent = dequantize(block)
            value_bytes = block.nbytes
        else:
            sent = survivors
            value_bytes = 8 * survivors.size
        if indices is None:
            dense = np.array(sent, copy=True)
            nbytes = value_bytes
            kept = dim
        else:
            dense = scatter(indices, sent, dim)
            nbytes = indices.size * spec.index_bytes + value_bytes
            kept = indices.size
        if spec.error_feedback:
            self._residuals[slot] = vec - dense
        return CompressedPayload(dense=dense, nbytes=int(nbytes), kept=kept)

    def compress_uplink(self, silo: int, payload: np.ndarray) -> CompressedPayload:
        """Compress silo ``silo``'s post-noise uplink payload."""
        if not 0 <= silo < self.n_silos:
            raise ValueError("unknown silo id")
        return self.compress(silo, payload)

    def compress_downlink(self, update: np.ndarray) -> CompressedPayload:
        """Compress the server's broadcast model update."""
        return self.compress(DOWNLINK_SLOT, update)

    def draw_support(self, dim: int) -> np.ndarray:
        """One shared random-k support (the secure path's round support).

        Drawn from the compressor's private stream; in deployment the
        support derives from the silos' shared seed R, so indices never
        cross the wire (the byte accounting assumes that).
        """
        if self.spec.sparsify != "randk":
            raise ValueError("shared supports require sparsify='randk'")
        return randk_indices(dim, self.spec.keep_count(dim), self.rng)

    # -- byte accounting -----------------------------------------------------

    def estimated_payload_bytes(self, dim: int | None = None) -> int:
        """Analytic per-payload wire size (the bandwidth models' input)."""
        return self.spec.payload_bytes(self.dim if dim is None else dim)

    def residual(self, slot: int) -> np.ndarray | None:
        """The slot's current error-feedback residual (None before any)."""
        return self._residuals.get(slot)

    # -- checkpoint serialisation --------------------------------------------

    def state_dict(self) -> dict:
        """Dynamic state (RNG + residuals); spec/shape are reconstructed."""
        return {
            "rng": self.rng.bit_generator.state,
            "residuals": {
                int(slot): residual.copy()
                for slot, residual in self._residuals.items()
            },
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (bit-identical resume)."""
        self.rng.bit_generator.state = state["rng"]
        self._residuals = {
            int(slot): np.asarray(residual, dtype=np.float64).copy()
            for slot, residual in state["residuals"].items()
        }
