"""A small numpy neural-network substrate with manual backpropagation.

The paper's reference implementation trains PyTorch models; this package
replaces exactly the slice of functionality Uldp-FL needs:

- :mod:`repro.nn.layers` -- Linear, Conv2d, pooling, activations, Flatten.
- :mod:`repro.nn.losses` -- softmax cross-entropy, binary cross-entropy,
  Cox proportional-hazards partial likelihood (for TcgaBrca).
- :mod:`repro.nn.model` -- the :class:`Sequential` container, parameter
  flattening (FL exchanges flat parameter vectors), and the model factories
  used by the benchmarks.
- :mod:`repro.nn.optim` -- plain SGD.
- :mod:`repro.nn.train` -- mini-batch training / evaluation helpers.
- :mod:`repro.nn.dpsgd` -- DP-SGD (per-sample clipping + Gaussian noise +
  Poisson sampling), the local subroutine of ULDP-GROUP-k.

Batched leading-axis support: ``Batched*`` layers and losses plus
:class:`repro.nn.model.BatchedSequential` train many independent model
copies in one forward/backward pass -- the substrate of the vectorized
multi-user engine (:mod:`repro.core.engine`).

All randomness flows through explicit ``numpy.random.Generator`` instances
so every experiment is reproducible from a seed.
"""

from repro.nn.clip import (
    clip_factor,
    clip_factor_from_norms,
    clip_factor_rows,
    l2_clip,
    l2_clip_rows,
)
from repro.nn.layers import (
    AvgPool2d,
    BatchedConv2d,
    BatchedFlatten,
    BatchedLinear,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Tanh,
)
from repro.nn.losses import (
    BatchedBCEWithLogitsLoss,
    BatchedCoxPHLoss,
    BatchedLoss,
    BatchedSoftmaxCrossEntropyLoss,
    BCEWithLogitsLoss,
    CoxPHLoss,
    Loss,
    SoftmaxCrossEntropyLoss,
    batched_counterpart,
)
from repro.nn.model import (
    BatchedSequential,
    Sequential,
    batch_model,
    build_cox_linear,
    build_creditcard_mlp,
    build_logistic,
    build_mnist_cnn,
    build_tiny_mlp,
)
from repro.nn.optim import SGD
from repro.nn.train import evaluate_accuracy, evaluate_loss, predict, train_epochs
from repro.nn.dpsgd import dpsgd_train

__all__ = [
    "clip_factor",
    "clip_factor_from_norms",
    "clip_factor_rows",
    "l2_clip",
    "l2_clip_rows",
    "AvgPool2d",
    "BatchedConv2d",
    "BatchedFlatten",
    "BatchedLinear",
    "Conv2d",
    "Flatten",
    "Linear",
    "MaxPool2d",
    "ReLU",
    "Tanh",
    "BatchedBCEWithLogitsLoss",
    "BatchedCoxPHLoss",
    "BatchedLoss",
    "BatchedSoftmaxCrossEntropyLoss",
    "BCEWithLogitsLoss",
    "CoxPHLoss",
    "Loss",
    "SoftmaxCrossEntropyLoss",
    "batched_counterpart",
    "BatchedSequential",
    "Sequential",
    "batch_model",
    "build_cox_linear",
    "build_creditcard_mlp",
    "build_logistic",
    "build_mnist_cnn",
    "build_tiny_mlp",
    "SGD",
    "evaluate_accuracy",
    "evaluate_loss",
    "predict",
    "train_epochs",
    "dpsgd_train",
]
