"""Pluggable ``xp``-style array backends for the sharded engine.

The engine's hot loop has two distinct pieces of array math: the
per-user local training kernels (the :mod:`repro.nn.batched` interface)
and the weighted partial-sum fold that turns a micro-batch of clipped
rows into one partial aggregate.  This module makes the array namespace
behind that math a named, swappable object instead of a hard ``numpy``
import:

* ``numpy`` -- the reference backend, always available, and the one the
  bit-identity contract is stated against;
* ``torch`` / ``cupy`` -- optional accelerator backends constructed
  only when their import succeeds.  They implement the same fold
  interface today; a full training backend additionally has to provide
  a module with :func:`repro.nn.batched.per_group_gradients`'s
  signature, which :func:`batched_module` resolves (and reports
  honestly when it is missing).

Nothing here installs or requires the optional packages: asking for an
absent backend raises :class:`BackendUnavailable` with an actionable
message, and :func:`available_backends` probes quietly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

__all__ = [
    "ArrayBackend",
    "BACKENDS",
    "BackendUnavailable",
    "available_backends",
    "batched_module",
    "get_backend",
    "validate_backend",
]

#: Names accepted by ``[engine] backend = ...`` (probed lazily).
BACKENDS = ("numpy", "torch", "cupy")


class BackendUnavailable(RuntimeError):
    """Raised when a configured backend's package is not importable."""


@dataclass(frozen=True)
class ArrayBackend:
    """A named array namespace plus the numpy bridge the engine needs."""

    name: str
    xp: Any
    from_numpy: Callable[[np.ndarray], Any]
    to_numpy: Callable[[Any], np.ndarray]
    #: Module implementing the :mod:`repro.nn.batched` training interface
    #: (``per_group_gradients``), or ``None`` when the backend only
    #: accelerates the reduction fold.
    batched: Any = field(default=None, repr=False)

    def weighted_sum(self, weights: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """``weights @ rows`` on the backend, returned as float64 numpy.

        This is the fold the sharded engine applies to every micro-batch
        of clipped rows; keeping it behind the backend means a GPU
        backend can keep the rows device-resident and ship only the
        ``(params,)`` partial back.
        """
        w = self.from_numpy(np.ascontiguousarray(weights, dtype=np.float64))
        r = self.from_numpy(rows)
        return np.asarray(self.to_numpy(self.xp.matmul(w, r)), dtype=np.float64)


def _numpy_backend() -> ArrayBackend:
    from repro.nn import batched

    return ArrayBackend(
        name="numpy",
        xp=np,
        from_numpy=lambda a: a,
        to_numpy=np.asarray,
        batched=batched,
    )


def _torch_backend() -> ArrayBackend:
    try:
        import torch
    except ImportError as exc:
        raise BackendUnavailable(
            "backend 'torch' requires the optional torch package "
            "(not installed in this environment); use backend='numpy'"
        ) from exc
    return ArrayBackend(
        name="torch",
        xp=torch,
        from_numpy=torch.from_numpy,
        to_numpy=lambda t: t.detach().cpu().numpy(),
    )


def _cupy_backend() -> ArrayBackend:
    try:
        import cupy
    except ImportError as exc:
        raise BackendUnavailable(
            "backend 'cupy' requires the optional cupy package "
            "(not installed in this environment); use backend='numpy'"
        ) from exc
    return ArrayBackend(
        name="cupy",
        xp=cupy,
        from_numpy=cupy.asarray,
        to_numpy=cupy.asnumpy,
    )


_FACTORIES: dict[str, Callable[[], ArrayBackend]] = {
    "numpy": _numpy_backend,
    "torch": _torch_backend,
    "cupy": _cupy_backend,
}


def validate_backend(name: str) -> str:
    """Check ``name`` against the registry without importing anything."""
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown array backend {name!r}; choose from {', '.join(BACKENDS)}"
        )
    return name


def get_backend(name: str = "numpy") -> ArrayBackend:
    """Resolve a backend by name (raises :class:`BackendUnavailable` if
    the optional package backing it is missing)."""
    return _FACTORIES[validate_backend(name)]()


def available_backends() -> tuple[str, ...]:
    """The subset of :data:`BACKENDS` that can actually be constructed."""
    names = []
    for name in BACKENDS:
        try:
            get_backend(name)
        except BackendUnavailable:
            continue
        names.append(name)
    return tuple(names)


def batched_module(backend: ArrayBackend) -> Any:
    """The backend's implementation of the ``nn.batched`` training
    interface, or a clear error when only the fold is accelerated."""
    if backend.batched is None:
        raise BackendUnavailable(
            f"backend {backend.name!r} provides the reduction fold but no "
            "batched training module yet; local training runs on the "
            "'numpy' reference implementation"
        )
    return backend.batched
