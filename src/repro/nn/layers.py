"""Neural-network layers with explicit forward/backward passes.

Every layer exposes:

- ``forward(x)``: computes the output and caches whatever backward needs;
- ``backward(grad_out)``: returns the gradient w.r.t. the input and stores
  parameter gradients in ``self.grads`` (aligned with ``self.params``);
- ``params`` / ``grads``: lists of numpy arrays (empty for stateless
  layers).

Shapes follow the PyTorch convention: dense inputs are ``(N, features)``,
images are ``(N, C, H, W)``.
"""

from __future__ import annotations

import numpy as np


class Layer:
    """Base class; stateless layers only override forward/backward."""

    def __init__(self):
        self.params: list[np.ndarray] = []
        self.grads: list[np.ndarray] = []

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for g in self.grads:
            g[...] = 0.0


class Linear(Layer):
    """Fully connected layer: y = x @ W + b."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        super().__init__()
        # He initialisation (fan-in scaled); fine for both ReLU and linear
        # heads at the sizes used here.
        scale = np.sqrt(2.0 / in_features)
        self.weight = rng.standard_normal((in_features, out_features)) * scale
        self.bias = np.zeros(out_features)
        self.params = [self.weight, self.bias]
        self.grads = [np.zeros_like(self.weight), np.zeros_like(self.bias)]
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.weight + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.grads[0] += self._x.T @ grad_out
        self.grads[1] += grad_out.sum(axis=0)
        return grad_out @ self.weight.T


class ReLU(Layer):
    def __init__(self):
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._mask


class Tanh(Layer):
    def __init__(self):
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_out * (1.0 - self._out**2)


class Flatten(Layer):
    def __init__(self):
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._shape)


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int) -> tuple[np.ndarray, int, int]:
    """Unfold (N, C, H, W) into (N, C*kh*kw, out_h*out_w) patches."""
    n, c, h, w = x.shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    # Strided view: (N, C, kh, kw, out_h, out_w)
    s = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, out_h, out_w),
        strides=(s[0], s[1], s[2], s[3], s[2] * stride, s[3] * stride),
        writeable=False,
    )
    cols = view.reshape(n, c * kh * kw, out_h * out_w)
    return np.ascontiguousarray(cols), out_h, out_w


def _col2im(
    cols: np.ndarray,
    x_shape: tuple[int, ...],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fold patch gradients back to the input shape (adjoint of im2col)."""
    n, c, h, w = x_shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad))
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += cols[
                :, :, i, j, :, :
            ]
    if pad:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


class Conv2d(Layer):
    """2D convolution via im2col; weight shape (out_c, in_c, kh, kw)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
    ):
        super().__init__()
        fan_in = in_channels * kernel_size * kernel_size
        scale = np.sqrt(2.0 / fan_in)
        self.weight = rng.standard_normal(
            (out_channels, in_channels, kernel_size, kernel_size)
        ) * scale
        self.bias = np.zeros(out_channels)
        self.stride = stride
        self.padding = padding
        self.kernel_size = kernel_size
        self.params = [self.weight, self.bias]
        self.grads = [np.zeros_like(self.weight), np.zeros_like(self.bias)]
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        cols, out_h, out_w = _im2col(x, k, k, self.stride, self.padding)
        w_row = self.weight.reshape(self.weight.shape[0], -1)  # (out_c, C*k*k)
        out = np.einsum("of,nfp->nop", w_row, cols) + self.bias[None, :, None]
        self._cache = (x.shape, cols)
        return out.reshape(x.shape[0], self.weight.shape[0], out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, cols = self._cache
        n, out_c, out_h, out_w = grad_out.shape
        g = grad_out.reshape(n, out_c, out_h * out_w)
        w_row = self.weight.reshape(out_c, -1)
        self.grads[0] += np.einsum("nop,nfp->of", g, cols).reshape(self.weight.shape)
        self.grads[1] += g.sum(axis=(0, 2))
        dcols = np.einsum("of,nop->nfp", w_row, g)
        k = self.kernel_size
        return _col2im(dcols, x_shape, k, k, self.stride, self.padding)


class MaxPool2d(Layer):
    """Non-overlapping max pooling with kernel = stride = ``size``.

    Inputs whose spatial dims are not divisible by ``size`` are cropped at
    the bottom/right edge (floor semantics, like PyTorch's default).
    """

    def __init__(self, size: int):
        super().__init__()
        self.size = size
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        oh, ow = h // s, w // s
        cropped = x[:, :, : oh * s, : ow * s]
        windows = cropped.reshape(n, c, oh, s, ow, s)
        out = windows.max(axis=(3, 5))
        self._cache = (x.shape, windows, out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, windows, out = self._cache
        n, c, h, w = x_shape
        s = self.size
        oh, ow = h // s, w // s
        mask = windows == out[:, :, :, None, :, None]
        # Break ties like a single-argmax pool: normalise so gradient mass
        # is preserved even when several entries share the max.
        counts = mask.sum(axis=(3, 5), keepdims=True)
        grad_windows = mask * (grad_out[:, :, :, None, :, None] / counts)
        dx = np.zeros(x_shape)
        dx[:, :, : oh * s, : ow * s] = grad_windows.reshape(n, c, oh * s, ow * s)
        return dx


class AvgPool2d(Layer):
    """Non-overlapping average pooling with kernel = stride = ``size``."""

    def __init__(self, size: int):
        super().__init__()
        self.size = size
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        oh, ow = h // s, w // s
        self._x_shape = x.shape
        return x[:, :, : oh * s, : ow * s].reshape(n, c, oh, s, ow, s).mean(axis=(3, 5))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        s = self.size
        oh, ow = h // s, w // s
        dx = np.zeros(self._x_shape)
        expanded = np.repeat(np.repeat(grad_out, s, axis=2), s, axis=3) / (s * s)
        dx[:, :, : oh * s, : ow * s] = expanded
        return dx
