"""Neural-network layers with explicit forward/backward passes.

Every layer exposes:

- ``forward(x)``: computes the output and caches whatever backward needs;
- ``backward(grad_out)``: returns the gradient w.r.t. the input and stores
  parameter gradients in ``self.grads`` (aligned with ``self.params``);
- ``params`` / ``grads``: lists of numpy arrays (empty for stateless
  layers).

Shapes follow the PyTorch convention: dense inputs are ``(N, features)``,
images are ``(N, C, H, W)``.

Batched leading axis (the vectorized multi-user engine): several layers
additionally accept a *group* axis in front, so ``G`` independent models --
one per (silo, user) pair in ULDP-AVG -- train in a single pass:

- :class:`BatchedLinear` / :class:`BatchedConv2d` hold per-group parameters
  of shape ``(G, ...)`` and map ``(G, N, ...)`` inputs to ``(G, N, ...)``
  outputs;
- :class:`ReLU` and :class:`Tanh` are elementwise and handle any rank
  unchanged;
- :class:`MaxPool2d` / :class:`AvgPool2d` transparently fold a 5-D
  ``(G, N, C, H, W)`` input into the sample axis;
- :class:`BatchedFlatten` flattens everything behind the two leading axes.

See :mod:`repro.core.engine` for the training loop built on top of these.
"""

from __future__ import annotations

import numpy as np


class Layer:
    """Base class; stateless layers only override forward/backward."""

    def __init__(self):
        self.params: list[np.ndarray] = []
        self.grads: list[np.ndarray] = []

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for g in self.grads:
            g[...] = 0.0


class Linear(Layer):
    """Fully connected layer: y = x @ W + b."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        super().__init__()
        # He initialisation (fan-in scaled); fine for both ReLU and linear
        # heads at the sizes used here.
        scale = np.sqrt(2.0 / in_features)
        self.weight = rng.standard_normal((in_features, out_features)) * scale
        self.bias = np.zeros(out_features)
        self.params = [self.weight, self.bias]
        self.grads = [np.zeros_like(self.weight), np.zeros_like(self.bias)]
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.weight + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.grads[0] += self._x.T @ grad_out
        self.grads[1] += grad_out.sum(axis=0)
        return grad_out @ self.weight.T


class BatchedLinear(Layer):
    """``G`` independent fully connected layers: y[g] = x[g] @ W[g] + b[g].

    Parameters carry a leading group axis (``weight`` is
    ``(G, in_features, out_features)``); inputs are ``(G, N, in_features)``.
    Group ``g``'s forward/backward is bit-for-bit the same linear algebra as
    a standalone :class:`Linear`, which is what makes the vectorized engine
    a drop-in replacement for the per-user training loop.

    Parameters are allocated as zeros -- the engine always loads them from a
    flat global parameter vector before use.  ``skip_input_grad`` (set by
    :func:`repro.nn.model.batch_model` on a network's first layer) elides
    the unused input-gradient computation in ``backward``.
    """

    def __init__(self, in_features: int, out_features: int, groups: int):
        super().__init__()
        if groups < 1:
            raise ValueError("need at least one group")
        self.weight = np.zeros((groups, in_features, out_features))
        self.bias = np.zeros((groups, out_features))
        self.skip_input_grad = False
        self.params = [self.weight, self.bias]
        self.grads = [np.zeros_like(self.weight), np.zeros_like(self.bias)]
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3 or x.shape[0] != self.weight.shape[0]:
            raise ValueError("expected (groups, batch, in_features) input")
        self._x = x
        return x @ self.weight + self.bias[:, None, :]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.grads[0] += np.swapaxes(self._x, 1, 2) @ grad_out
        self.grads[1] += grad_out.sum(axis=1)
        if self.skip_input_grad:
            return np.zeros(0)
        return grad_out @ np.swapaxes(self.weight, 1, 2)


class ReLU(Layer):
    def __init__(self):
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._mask


class Tanh(Layer):
    def __init__(self):
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_out * (1.0 - self._out**2)


class Flatten(Layer):
    def __init__(self):
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._shape)


class BatchedFlatten(Layer):
    """Flatten everything behind the (group, sample) axes: (G, N, ...) -> (G, N, F)."""

    def __init__(self):
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim < 3:
            raise ValueError("expected at least (groups, batch, features) input")
        self._shape = x.shape
        return x.reshape(x.shape[0], x.shape[1], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._shape)


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int) -> tuple[np.ndarray, int, int]:
    """Unfold (N, C, H, W) into (N, C*kh*kw, out_h*out_w) patches."""
    n, c, h, w = x.shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    # Strided view: (N, C, kh, kw, out_h, out_w)
    s = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, out_h, out_w),
        strides=(s[0], s[1], s[2], s[3], s[2] * stride, s[3] * stride),
        writeable=False,
    )
    cols = view.reshape(n, c * kh * kw, out_h * out_w)
    return np.ascontiguousarray(cols), out_h, out_w


def _col2im(
    cols: np.ndarray,
    x_shape: tuple[int, ...],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fold (N, C*kh*kw, P) patch gradients back to the input shape (adjoint of im2col)."""
    n, c, h, w = x_shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad))
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += cols[
                :, :, i, j, :, :
            ]
    if pad:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


class Conv2d(Layer):
    """2D convolution via im2col; weight shape (out_c, in_c, kh, kw)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
    ):
        super().__init__()
        fan_in = in_channels * kernel_size * kernel_size
        scale = np.sqrt(2.0 / fan_in)
        self.weight = rng.standard_normal(
            (out_channels, in_channels, kernel_size, kernel_size)
        ) * scale
        self.bias = np.zeros(out_channels)
        self.stride = stride
        self.padding = padding
        self.kernel_size = kernel_size
        self.params = [self.weight, self.bias]
        self.grads = [np.zeros_like(self.weight), np.zeros_like(self.bias)]
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        cols, out_h, out_w = _im2col(x, k, k, self.stride, self.padding)
        w_row = self.weight.reshape(self.weight.shape[0], -1)  # (out_c, C*k*k)
        out = np.einsum("of,nfp->nop", w_row, cols) + self.bias[None, :, None]
        self._cache = (x.shape, cols)
        return out.reshape(x.shape[0], self.weight.shape[0], out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, cols = self._cache
        n, out_c, out_h, out_w = grad_out.shape
        g = grad_out.reshape(n, out_c, out_h * out_w)
        w_row = self.weight.reshape(out_c, -1)
        self.grads[0] += np.einsum("nop,nfp->of", g, cols).reshape(self.weight.shape)
        self.grads[1] += g.sum(axis=(0, 2))
        dcols = np.einsum("of,nop->nfp", w_row, g)
        k = self.kernel_size
        return _col2im(dcols, x_shape, k, k, self.stride, self.padding)


def _im2col_grouped(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> tuple[np.ndarray, int, int]:
    """Unfold (G, N, C, H, W) into (G, C*kh*kw, N*out_h*out_w) patches.

    The per-group patch matrix puts the contraction axis second, so the
    per-group convolution is a single GEMM ``W_row[g] @ cols[g]`` -- one
    large BLAS call per group instead of one small one per sample.
    """
    g, n, c, h, w = x.shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (0, 0), (pad, pad), (pad, pad)))
    s = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(g, n, c, kh, kw, out_h, out_w),
        strides=(s[0], s[1], s[2], s[3], s[4], s[3] * stride, s[4] * stride),
        writeable=False,
    )
    cols = np.ascontiguousarray(view.transpose(0, 2, 3, 4, 1, 5, 6))
    return cols.reshape(g, c * kh * kw, n * out_h * out_w), out_h, out_w


class BatchedConv2d(Layer):
    """``G`` independent 2D convolutions over ``(G, N, C, H, W)`` inputs.

    The weight carries a leading group axis ``(G, out_c, in_c, kh, kw)``.
    Patches are gathered with :func:`_im2col_grouped` so the whole layer is
    one batched GEMM over groups -- the same patches and the same
    contraction as ``G`` separate :class:`Conv2d` layers.

    ``skip_input_grad`` (set by :func:`repro.nn.model.batch_model` on a
    network's first layer) elides the input-gradient computation in
    ``backward``, which nothing consumes for the input layer.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        groups: int,
        stride: int = 1,
        padding: int = 0,
    ):
        super().__init__()
        if groups < 1:
            raise ValueError("need at least one group")
        self.weight = np.zeros(
            (groups, out_channels, in_channels, kernel_size, kernel_size)
        )
        self.bias = np.zeros((groups, out_channels))
        self.stride = stride
        self.padding = padding
        self.kernel_size = kernel_size
        self.skip_input_grad = False
        self.params = [self.weight, self.bias]
        self.grads = [np.zeros_like(self.weight), np.zeros_like(self.bias)]
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 5 or x.shape[0] != self.weight.shape[0]:
            raise ValueError("expected (groups, batch, C, H, W) input")
        g, n = x.shape[:2]
        k = self.kernel_size
        out_c = self.weight.shape[1]
        cols, out_h, out_w = _im2col_grouped(x, k, k, self.stride, self.padding)
        w_row = self.weight.reshape(g, out_c, -1)  # (G, out_c, C*k*k)
        out = w_row @ cols + self.bias[:, :, None]  # (G, out_c, N*P)
        self._cache = (x.shape, cols)
        out = out.reshape(g, out_c, n, out_h * out_w)
        return np.ascontiguousarray(out.transpose(0, 2, 1, 3)).reshape(
            g, n, out_c, out_h, out_w
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, cols = self._cache
        g, n, out_c, out_h, out_w = grad_out.shape
        go = grad_out.reshape(g, n, out_c, out_h * out_w)
        go = np.ascontiguousarray(go.transpose(0, 2, 1, 3)).reshape(g, out_c, -1)
        w_row = self.weight.reshape(g, out_c, -1)
        # dW[g] = go[g] @ cols[g].T -- one GEMM per group.
        self.grads[0] += (go @ cols.transpose(0, 2, 1)).reshape(self.weight.shape)
        self.grads[1] += go.sum(axis=2)
        if self.skip_input_grad:
            return np.zeros(0)
        # dcols[g] = W_row[g].T @ go[g], then fold back per sample.
        dcols = np.swapaxes(w_row, 1, 2) @ go  # (G, C*k*k, N*P)
        k = self.kernel_size
        p = out_h * out_w
        f = dcols.shape[1]
        dcols = np.ascontiguousarray(
            dcols.reshape(g, f, n, p).transpose(0, 2, 1, 3)
        ).reshape(g * n, f, p)
        dx = _col2im(
            dcols, (g * n, *x_shape[2:]), k, k, self.stride, self.padding
        )
        return dx.reshape(x_shape)


class MaxPool2d(Layer):
    """Non-overlapping max pooling with kernel = stride = ``size``.

    Inputs whose spatial dims are not divisible by ``size`` are cropped at
    the bottom/right edge (floor semantics, like PyTorch's default).

    A 5-D ``(G, N, C, H, W)`` input (batched leading axis) is pooled by
    folding the group axis into the sample axis -- pooling is per-sample, so
    the result is identical to pooling each group separately.
    """

    def __init__(self, size: int):
        super().__init__()
        self.size = size
        self._cache: tuple | None = None
        self._lead: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._lead = x.shape[:2] if x.ndim == 5 else None
        if self._lead is not None:
            x = x.reshape(-1, *x.shape[2:])
        n, c, h, w = x.shape
        s = self.size
        oh, ow = h // s, w // s
        # One strided-slice maximum per window offset: much faster than a
        # multi-axis reduction over a 6-D window view, same result.
        out = x[:, :, 0 : oh * s : s, 0 : ow * s : s].copy()
        for i in range(s):
            for j in range(s):
                if i or j:
                    np.maximum(out, x[:, :, i : oh * s : s, j : ow * s : s], out=out)
        self._cache = (x.shape, x, out)
        if self._lead is not None:
            return out.reshape(*self._lead, *out.shape[1:])
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        if self._lead is not None:
            grad_out = grad_out.reshape(-1, *grad_out.shape[2:])
        x_shape, x, out = self._cache
        n, c, h, w = x_shape
        s = self.size
        oh, ow = h // s, w // s
        # Break ties like a single-argmax pool: normalise so gradient mass
        # is preserved even when several entries share the max.
        masks = [
            [x[:, :, i : oh * s : s, j : ow * s : s] == out for j in range(s)]
            for i in range(s)
        ]
        counts = np.zeros_like(out)
        for row in masks:
            for mask in row:
                counts += mask
        scaled = grad_out / counts
        dx = np.zeros(x_shape)
        for i in range(s):
            for j in range(s):
                dx[:, :, i : oh * s : s, j : ow * s : s] = masks[i][j] * scaled
        if self._lead is not None:
            return dx.reshape(*self._lead, *x_shape[1:])
        return dx


class AvgPool2d(Layer):
    """Non-overlapping average pooling with kernel = stride = ``size``.

    Like :class:`MaxPool2d`, a 5-D ``(G, N, C, H, W)`` input is handled by
    folding the group axis into the sample axis.
    """

    def __init__(self, size: int):
        super().__init__()
        self.size = size
        self._x_shape: tuple[int, ...] | None = None
        self._lead: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._lead = x.shape[:2] if x.ndim == 5 else None
        if self._lead is not None:
            x = x.reshape(-1, *x.shape[2:])
        n, c, h, w = x.shape
        s = self.size
        oh, ow = h // s, w // s
        self._x_shape = x.shape
        out = x[:, :, : oh * s, : ow * s].reshape(n, c, oh, s, ow, s).mean(axis=(3, 5))
        if self._lead is not None:
            return out.reshape(*self._lead, *out.shape[1:])
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        if self._lead is not None:
            grad_out = grad_out.reshape(-1, *grad_out.shape[2:])
        n, c, h, w = self._x_shape
        s = self.size
        oh, ow = h // s, w // s
        dx = np.zeros(self._x_shape)
        expanded = np.repeat(np.repeat(grad_out, s, axis=2), s, axis=3) / (s * s)
        dx[:, :, : oh * s, : ow * s] = expanded
        if self._lead is not None:
            return dx.reshape(*self._lead, *self._x_shape[1:])
        return dx
