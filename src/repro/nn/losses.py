"""Loss functions with analytic gradients.

Each loss exposes ``forward(pred, target) -> float`` (mean loss over the
batch) and ``backward() -> dpred`` (gradient of the *mean* loss w.r.t. the
predictions, same shape as ``pred``).

The Cox proportional-hazards loss follows the FLamby TcgaBrca setup the
paper reuses: predictions are linear risk scores, and the loss is the
negative partial log-likelihood under the Breslow convention.  It needs at
least one observed event and at least two records to be defined, which is
why the paper requires >= 2 records per user/silo pair for this dataset.

Batched counterparts (``Batched*Loss``) serve the vectorized multi-user
engine: predictions carry a leading group axis and a boolean validity mask
marks the padding introduced when users with different record counts are
stacked into one tensor.  ``forward(pred, target, mask) -> (G,)`` returns
the per-group mean loss; ``backward()`` returns the gradient of each
group's *own* mean loss, zero at padded positions.  Groups on which the
loss is undefined (the :class:`CoxPHLoss` degenerate cases) contribute a
zero gradient instead of raising -- exactly matching the loop path, which
skips the optimiser step for such users.
"""

from __future__ import annotations

import numpy as np


class Loss:
    """Base class for losses."""

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError


class DegenerateBatchError(ValueError):
    """A batch on which the loss is mathematically undefined.

    Raised by :class:`CoxPHLoss` for batches with fewer than two records or
    no observed events.  Training loops catch this and skip the batch (the
    standard practice for partial-likelihood losses under mini-batching).
    """


class SoftmaxCrossEntropyLoss(Loss):
    """Multi-class cross-entropy over logits of shape (N, n_classes).

    Targets are integer class labels of shape (N,).
    """

    def __init__(self):
        self._probs: np.ndarray | None = None
        self._target: np.ndarray | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        target = np.asarray(target, dtype=np.int64).ravel()
        if pred.ndim != 2 or len(target) != pred.shape[0]:
            raise ValueError("pred must be (N, classes) with N targets")
        shifted = pred - pred.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        self._probs = probs
        self._target = target
        n = pred.shape[0]
        log_likelihood = np.log(probs[np.arange(n), target] + 1e-300)
        return float(-log_likelihood.mean())

    def backward(self) -> np.ndarray:
        if self._probs is None or self._target is None:
            raise RuntimeError("backward called before forward")
        n = self._probs.shape[0]
        grad = self._probs.copy()
        grad[np.arange(n), self._target] -= 1.0
        return grad / n


class BCEWithLogitsLoss(Loss):
    """Binary cross-entropy over logits of shape (N,) or (N, 1).

    Targets are 0/1 labels.  Numerically stable formulation:
    loss = max(z, 0) - z*y + log(1 + exp(-|z|)).
    """

    def __init__(self):
        self._z: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._shape: tuple[int, ...] | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        self._shape = pred.shape
        z = pred.ravel().astype(np.float64)
        y = np.asarray(target, dtype=np.float64).ravel()
        if z.shape != y.shape:
            raise ValueError("pred and target sizes differ")
        self._z, self._y = z, y
        loss = np.maximum(z, 0.0) - z * y + np.log1p(np.exp(-np.abs(z)))
        return float(loss.mean())

    def backward(self) -> np.ndarray:
        if self._z is None or self._y is None or self._shape is None:
            raise RuntimeError("backward called before forward")
        sigmoid = 1.0 / (1.0 + np.exp(-self._z))
        grad = (sigmoid - self._y) / len(self._z)
        return grad.reshape(self._shape)


class CoxPHLoss(Loss):
    """Negative Cox partial log-likelihood (Breslow ties convention).

    Predictions are risk scores eta of shape (N,) or (N, 1).  Targets are
    shape (N, 2): column 0 is the observed time, column 1 the event
    indicator (1 = event, 0 = censored).

    loss = -(1/N_events) sum_{i: event} [ eta_i - log sum_{j: t_j >= t_i} exp(eta_j) ]
    """

    def __init__(self):
        self._cache: tuple | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        shape = pred.shape
        eta = pred.ravel().astype(np.float64)
        target = np.asarray(target, dtype=np.float64)
        if target.ndim != 2 or target.shape[1] != 2 or target.shape[0] != len(eta):
            raise ValueError("target must be (N, 2): time, event")
        times = target[:, 0]
        events = target[:, 1]
        n_events = int(events.sum())
        if n_events == 0:
            raise DegenerateBatchError("Cox loss undefined without observed events")
        if len(eta) < 2:
            raise DegenerateBatchError("Cox loss needs at least two records")

        # Risk-set membership matrix: R[i, j] = 1 iff t_j >= t_i.
        risk = (times[None, :] >= times[:, None]).astype(np.float64)
        # Stable log-sum-exp over each risk set.
        eta_max = eta.max()
        exp_eta = np.exp(eta - eta_max)
        risk_sums = risk @ exp_eta  # sum_{j in R_i} exp(eta_j - max)
        log_risk = np.log(risk_sums) + eta_max

        event_idx = events > 0
        loss = -(eta[event_idx] - log_risk[event_idx]).sum() / n_events
        self._cache = (shape, eta, risk, exp_eta, risk_sums, event_idx, n_events)
        return float(loss)

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        shape, eta, risk, exp_eta, risk_sums, event_idx, n_events = self._cache
        n = len(eta)
        grad = np.zeros(n)
        grad[event_idx] -= 1.0
        # d/d eta_j of sum_i log(sum_{k in R_i} exp(eta_k))
        #   = sum_{i: event, j in R_i} exp(eta_j) / risk_sums_i
        weights = np.where(event_idx, 1.0 / risk_sums, 0.0)
        grad += exp_eta * (risk.T @ weights)
        return (grad / n_events).reshape(shape)


class BatchedLoss:
    """Base class for group-batched losses with padding masks."""

    def forward(self, pred: np.ndarray, target: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Per-group mean loss ``(G,)``; undefined groups report 0."""
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        """Gradient of each group's mean loss w.r.t. ``pred`` (same shape)."""
        raise NotImplementedError


class BatchedSoftmaxCrossEntropyLoss(BatchedLoss):
    """Group-batched multi-class cross-entropy over ``(G, B, K)`` logits.

    Targets are integer labels ``(G, B)``; ``mask`` is boolean ``(G, B)``.
    Each group's loss and gradient match a standalone
    :class:`SoftmaxCrossEntropyLoss` over that group's valid records.
    """

    def __init__(self):
        self._cache: tuple | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray, mask: np.ndarray) -> np.ndarray:
        target = np.asarray(target, dtype=np.int64)
        mask = np.asarray(mask, dtype=bool)
        if pred.ndim != 3 or target.shape != pred.shape[:2] or mask.shape != pred.shape[:2]:
            raise ValueError("pred must be (G, B, K) with (G, B) targets and mask")
        shifted = pred - pred.max(axis=2, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=2, keepdims=True)
        counts = mask.sum(axis=1)
        safe_target = np.where(mask, target, 0)
        picked = np.take_along_axis(probs, safe_target[:, :, None], axis=2)[:, :, 0]
        log_likelihood = np.log(picked + 1e-300) * mask
        denom = np.maximum(counts, 1)
        self._cache = (probs, safe_target, mask, denom)
        return -log_likelihood.sum(axis=1) / denom

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, safe_target, mask, denom = self._cache
        grad = probs.copy()
        g, b = safe_target.shape
        grad[np.arange(g)[:, None], np.arange(b)[None, :], safe_target] -= 1.0
        return grad * (mask / denom[:, None])[:, :, None]


class BatchedBCEWithLogitsLoss(BatchedLoss):
    """Group-batched binary cross-entropy over ``(G, B)`` or ``(G, B, 1)`` logits."""

    def __init__(self):
        self._cache: tuple | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray, mask: np.ndarray) -> np.ndarray:
        shape = pred.shape
        mask = np.asarray(mask, dtype=bool)
        z = pred.reshape(pred.shape[0], -1).astype(np.float64)
        y = np.asarray(target, dtype=np.float64).reshape(z.shape[0], -1)
        if z.shape != y.shape or mask.shape != z.shape:
            raise ValueError("pred, target, and mask sizes differ")
        loss = np.maximum(z, 0.0) - z * y + np.log1p(np.exp(-np.abs(z)))
        denom = np.maximum(mask.sum(axis=1), 1)
        self._cache = (shape, z, y, mask, denom)
        return (loss * mask).sum(axis=1) / denom

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        shape, z, y, mask, denom = self._cache
        sigmoid = 1.0 / (1.0 + np.exp(-z))
        grad = (sigmoid - y) * mask / denom[:, None]
        return grad.reshape(shape)


class BatchedCoxPHLoss(BatchedLoss):
    """Group-batched negative Cox partial log-likelihood (Breslow ties).

    Predictions are risk scores ``(G, B)`` or ``(G, B, 1)``; targets are
    ``(G, B, 2)`` (time, event).  Risk sets only range over each group's
    valid records.  Degenerate groups -- no observed events or fewer than
    two valid records, the cases where :class:`CoxPHLoss` raises
    :class:`DegenerateBatchError` -- report zero loss and zero gradient.
    """

    def __init__(self):
        self._cache: tuple | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray, mask: np.ndarray) -> np.ndarray:
        shape = pred.shape
        mask = np.asarray(mask, dtype=bool)
        eta = pred.reshape(pred.shape[0], -1).astype(np.float64)
        target = np.asarray(target, dtype=np.float64)
        if target.ndim != 3 or target.shape[2] != 2 or target.shape[:2] != eta.shape:
            raise ValueError("target must be (G, B, 2): time, event")
        if mask.shape != eta.shape:
            raise ValueError("mask must be (G, B)")
        times = target[:, :, 0]
        events = (target[:, :, 1] > 0) & mask
        n_events = events.sum(axis=1)
        defined = (n_events > 0) & (mask.sum(axis=1) >= 2)

        # Risk-set membership within each group's valid records:
        # R[g, i, j] = 1 iff both valid and t_j >= t_i.
        risk = (
            (times[:, None, :] >= times[:, :, None])
            & mask[:, None, :]
            & mask[:, :, None]
        ).astype(np.float64)
        # Stable log-sum-exp, shifted by each group's max valid score (the
        # loop path shifts by the batch max -- same quantity per group).
        eta_max = np.where(mask, eta, -np.inf).max(axis=1, initial=-np.inf)
        eta_max = np.where(np.isfinite(eta_max), eta_max, 0.0)
        exp_eta = np.where(mask, np.exp(eta - eta_max[:, None]), 0.0)
        risk_sums = np.einsum("gij,gj->gi", risk, exp_eta)
        with np.errstate(divide="ignore"):
            log_risk = np.where(risk_sums > 0, np.log(risk_sums), 0.0) + eta_max[:, None]

        denom = np.maximum(n_events, 1)
        loss = -((eta - log_risk) * events).sum(axis=1) / denom
        self._cache = (shape, risk, exp_eta, risk_sums, events, denom, defined)
        return np.where(defined, loss, 0.0)

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        shape, risk, exp_eta, risk_sums, events, denom, defined = self._cache
        grad = -events.astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            weights = np.where(events & (risk_sums > 0), 1.0 / risk_sums, 0.0)
        grad += exp_eta * np.einsum("gij,gi->gj", risk, weights)
        grad = grad * defined[:, None] / denom[:, None]
        return grad.reshape(shape)


def batched_counterpart(loss: Loss) -> BatchedLoss:
    """The group-batched loss matching a per-batch :class:`Loss` instance."""
    if isinstance(loss, SoftmaxCrossEntropyLoss):
        return BatchedSoftmaxCrossEntropyLoss()
    if isinstance(loss, BCEWithLogitsLoss):
        return BatchedBCEWithLogitsLoss()
    if isinstance(loss, CoxPHLoss):
        return BatchedCoxPHLoss()
    raise TypeError(f"no batched counterpart for loss {type(loss).__name__}")


def concordance_index(risk: np.ndarray, times: np.ndarray, events: np.ndarray) -> float:
    """Harrell's C-index: fraction of comparable pairs ranked correctly.

    A pair (i, j) is comparable when the record with the smaller time had an
    event (its true risk is known to be higher).  Ties in predicted risk
    count one half.
    """
    risk = np.asarray(risk, dtype=np.float64).ravel()
    times = np.asarray(times, dtype=np.float64).ravel()
    events = np.asarray(events, dtype=np.float64).ravel()
    concordant = 0.0
    comparable = 0
    n = len(risk)
    for i in range(n):
        if events[i] != 1:
            continue
        for j in range(n):
            if times[j] > times[i]:
                comparable += 1
                if risk[i] > risk[j]:
                    concordant += 1.0
                elif risk[i] == risk[j]:
                    concordant += 0.5
    if comparable == 0:
        return 0.5
    return concordant / comparable
