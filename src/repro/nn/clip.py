"""L2 clipping primitives.

Clipping is the sensitivity-bounding primitive of every algorithm in the
paper: silo-level deltas in ULDP-NAIVE (Alg. 1 line 13), per-sample
gradients in DP-SGD (Alg. 2), and per-user per-silo deltas in ULDP-AVG/SGD
(Alg. 3 lines 16/23).  It lives in :mod:`repro.nn` because DP-SGD needs it
below the :mod:`repro.core` layer; :mod:`repro.core.clipping` re-exports it.
"""

from __future__ import annotations

import numpy as np


def l2_clip(vector: np.ndarray, clip: float) -> np.ndarray:
    """Scale ``vector`` to l2 norm at most ``clip``.

    Returns ``vector * min(1, clip / ||vector||_2)`` (a copy).  The zero
    vector is returned unchanged.  A non-finite vector (a diverged local
    update) is clipped to zero: naive scaling would produce NaNs (inf * 0)
    that poison the global model permanently, while dropping the update
    keeps the sensitivity bound intact.
    """
    if clip <= 0:
        raise ValueError("clip bound must be positive")
    norm = float(np.linalg.norm(vector))
    if not np.isfinite(norm):
        return np.zeros(np.asarray(vector).shape, dtype=np.float64)
    if norm <= clip or norm == 0.0:
        return np.array(vector, dtype=np.float64, copy=True)
    return np.asarray(vector, dtype=np.float64) * (clip / norm)


def clip_factor(vector: np.ndarray, clip: float) -> float:
    """The scalar min(1, C / ||v||) applied by :func:`l2_clip`.

    This is the alpha quantity of the convergence analysis (Theorem 6);
    exposing it separately lets the ablation benches measure clipping bias.
    A non-finite vector reports factor 0 (fully clipped away).
    """
    if clip <= 0:
        raise ValueError("clip bound must be positive")
    norm = float(np.linalg.norm(vector))
    if not np.isfinite(norm):
        return 0.0
    if norm == 0.0:
        return 1.0
    return min(1.0, clip / norm)


def clip_factor_from_norms(norms: np.ndarray, clip: float) -> np.ndarray:
    """Vector of ``min(1, clip / norm)`` factors from precomputed l2 norms.

    The single home of the edge-case conventions shared by every row-wise
    clipping path: zero norms map to factor 1 and non-finite norms to
    factor 0, matching the scalar :func:`clip_factor`.
    """
    if clip <= 0:
        raise ValueError("clip bound must be positive")
    norms = np.asarray(norms, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        factors = np.where(norms > 0, np.minimum(1.0, clip / norms), 1.0)
    factors[~np.isfinite(norms)] = 0.0
    return factors


def clip_factor_rows(matrix: np.ndarray, clip: float) -> np.ndarray:
    """Row-wise :func:`clip_factor` over a ``(G, P)`` matrix (vectorized).

    Returns the ``(G,)`` vector of factors; rows with non-finite entries
    report 0 and zero-norm rows report 1, matching the scalar function.
    The matrix is read exactly once (a single squared-norm reduction) --
    this sits on the round hot path for large delta matrices.
    """
    if clip <= 0:
        raise ValueError("clip bound must be positive")
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("expected a (rows, features) matrix")
    # A row with any NaN/inf entry yields a NaN/inf squared norm, exactly
    # the rows the scalar function maps to factor 0.
    norms = np.sqrt(np.einsum("ij,ij->i", matrix, matrix))
    return clip_factor_from_norms(norms, clip)


def l2_clip_rows(
    matrix: np.ndarray,
    clip: float,
    out: np.ndarray | None = None,
    factors: np.ndarray | None = None,
) -> np.ndarray:
    """Row-wise :func:`l2_clip` over a ``(G, P)`` matrix (vectorized).

    Each row is scaled to l2 norm at most ``clip``; rows with non-finite
    entries are zeroed (a diverged local update contributes nothing), the
    same semantics as the scalar function applied per row.  ``out`` may
    alias ``matrix`` to clip in place; ``factors`` may carry precomputed
    :func:`clip_factor_rows` results to skip the norm pass.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if factors is None:
        factors = clip_factor_rows(matrix, clip)
    with np.errstate(invalid="ignore"):
        if out is None:
            out = matrix * factors[:, None]
        else:
            np.multiply(matrix, factors[:, None], out=out)
    # Factor-0 rows are the non-finite ones; 0 * inf left NaNs behind.
    dropped = factors == 0.0
    if np.any(dropped):
        out[dropped] = 0.0
    return out
