"""L2 clipping primitives.

Clipping is the sensitivity-bounding primitive of every algorithm in the
paper: silo-level deltas in ULDP-NAIVE (Alg. 1 line 13), per-sample
gradients in DP-SGD (Alg. 2), and per-user per-silo deltas in ULDP-AVG/SGD
(Alg. 3 lines 16/23).  It lives in :mod:`repro.nn` because DP-SGD needs it
below the :mod:`repro.core` layer; :mod:`repro.core.clipping` re-exports it.
"""

from __future__ import annotations

import numpy as np


def l2_clip(vector: np.ndarray, clip: float) -> np.ndarray:
    """Scale ``vector`` to l2 norm at most ``clip``.

    Returns ``vector * min(1, clip / ||vector||_2)`` (a copy).  The zero
    vector is returned unchanged.  A non-finite vector (a diverged local
    update) is clipped to zero: naive scaling would produce NaNs (inf * 0)
    that poison the global model permanently, while dropping the update
    keeps the sensitivity bound intact.
    """
    if clip <= 0:
        raise ValueError("clip bound must be positive")
    norm = float(np.linalg.norm(vector))
    if not np.isfinite(norm):
        return np.zeros(np.asarray(vector).shape, dtype=np.float64)
    if norm <= clip or norm == 0.0:
        return np.array(vector, dtype=np.float64, copy=True)
    return np.asarray(vector, dtype=np.float64) * (clip / norm)


def clip_factor(vector: np.ndarray, clip: float) -> float:
    """The scalar min(1, C / ||v||) applied by :func:`l2_clip`.

    This is the alpha quantity of the convergence analysis (Theorem 6);
    exposing it separately lets the ablation benches measure clipping bias.
    A non-finite vector reports factor 0 (fully clipped away).
    """
    if clip <= 0:
        raise ValueError("clip bound must be positive")
    norm = float(np.linalg.norm(vector))
    if not np.isfinite(norm):
        return 0.0
    if norm == 0.0:
        return 1.0
    return min(1.0, clip / norm)
