"""DP-SGD (Abadi et al. 2016): the local subroutine of ULDP-GROUP-k.

Each noisy step:

1. Poisson-samples records with rate ``sample_rate`` (every record joins the
   batch independently),
2. computes *per-sample* gradients and clips each to l2 norm ``clip``,
3. sums the clipped gradients and adds Gaussian noise
   N(0, sigma^2 * clip^2 * I),
4. divides by the expected batch size and descends.

Privacy accounting for this subroutine is a sub-sampled Gaussian event with
rate ``sample_rate`` per step (see :mod:`repro.accounting.subsampled`); the
paper's Theorem 2 composes ``Q * T`` such steps, so the ULDP-GROUP client
runs exactly ``local_epochs`` noisy steps per round.

Per-sample gradients are computed either by looping single-record
forward/backward passes (``engine="loop"``, obviously correct) or by one
batched pass through a :class:`repro.nn.model.BatchedSequential` with one
group per microbatch (``engine="vectorized"``, the same linear algebra
reassociated -- see :mod:`repro.core.engine` for the equivalence contract).
"""

from __future__ import annotations

import numpy as np

from repro.nn.batched import per_group_gradients
from repro.nn.clip import l2_clip, l2_clip_rows
from repro.nn.losses import DegenerateBatchError, Loss
from repro.nn.model import Sequential


def per_sample_clipped_gradient_sum(
    model: Sequential,
    loss: Loss,
    x: np.ndarray,
    y: np.ndarray,
    clip: float,
    microbatch_size: int = 1,
) -> np.ndarray:
    """Sum of per-microbatch gradients, each clipped to l2 norm ``clip``.

    ``microbatch_size=1`` is canonical per-sample DP-SGD.  Larger
    microbatches are needed for losses that are undefined on single records
    (the Cox partial likelihood): clipping then bounds each *microbatch's*
    contribution, the classic TF-privacy microbatch relaxation -- removing
    one record perturbs exactly one clipped microbatch gradient, so the
    per-record sensitivity is at most 2 * clip instead of clip.  The
    ULDP-GROUP baseline accepts this standard looseness for survival tasks
    (and the paper's GDP epsilons are enormous regardless).
    """
    if microbatch_size < 1:
        raise ValueError("microbatch size must be at least 1")
    total = np.zeros(model.num_params)
    n = x.shape[0]
    for start in range(0, n, microbatch_size):
        idx = slice(start, min(start + microbatch_size, n))
        model.zero_grad()
        pred = model.forward(x[idx])
        try:
            loss.forward(pred, y[idx])
        except DegenerateBatchError:
            continue
        model.backward(loss.backward())
        total += l2_clip(model.get_flat_grads(), clip)
    return total


def per_sample_clipped_gradient_sum_vectorized(
    model: Sequential,
    loss: Loss,
    x: np.ndarray,
    y: np.ndarray,
    clip: float,
    microbatch_size: int = 1,
) -> np.ndarray:
    """Vectorized :func:`per_sample_clipped_gradient_sum`.

    Every microbatch's gradient is taken at the *same* parameters, so all
    of them come out of one shared-weight forward/backward
    (:func:`repro.nn.batched.per_group_gradients`, one group per
    microbatch); clipping is then row-wise and the sum a single reduction.
    Degenerate microbatches contribute zero rows, matching the loop's skip.
    """
    if microbatch_size < 1:
        raise ValueError("microbatch size must be at least 1")
    n = x.shape[0]
    if n == 0:
        return np.zeros(model.num_params)
    sizes = [
        min(start + microbatch_size, n) - start for start in range(0, n, microbatch_size)
    ]
    grads = per_group_gradients(model, loss, x, y, sizes)
    return l2_clip_rows(grads, clip).sum(axis=0)


def dpsgd_step(
    model: Sequential,
    loss: Loss,
    x: np.ndarray,
    y: np.ndarray,
    lr: float,
    clip: float,
    noise_multiplier: float,
    sample_rate: float,
    rng: np.random.Generator,
    microbatch_size: int = 1,
    engine: str = "loop",
) -> None:
    """One Poisson-sampled, clipped, noised gradient step (in place).

    ``engine="vectorized"`` computes the per-sample gradients in one
    batched pass; the randomness (Poisson mask, noise) is drawn identically
    either way, so both engines follow the same trajectory up to
    floating-point reassociation.
    """
    n = x.shape[0]
    mask = rng.random(n) < sample_rate
    expected_batch = max(sample_rate * n, 1e-12)
    if mask.any():
        grad_fn = (
            per_sample_clipped_gradient_sum_vectorized
            if engine == "vectorized"
            else per_sample_clipped_gradient_sum
        )
        grad_sum = grad_fn(
            model, loss, x[mask], y[mask], clip, microbatch_size=microbatch_size
        )
    else:
        grad_sum = np.zeros(model.num_params)
    noise = rng.normal(0.0, noise_multiplier * clip, size=model.num_params)
    update = (grad_sum + noise) / expected_batch
    model.set_flat_params(model.get_flat_params() - lr * update)


def dpsgd_train(
    model: Sequential,
    loss: Loss,
    x: np.ndarray,
    y: np.ndarray,
    lr: float,
    steps: int,
    clip: float,
    noise_multiplier: float,
    sample_rate: float,
    rng: np.random.Generator,
    microbatch_size: int = 1,
    engine: str = "loop",
) -> None:
    """Run ``steps`` DP-SGD steps in place.

    The caller is responsible for accounting ``steps`` sub-sampled Gaussian
    compositions at rate ``sample_rate``.
    """
    if not 0 < sample_rate <= 1:
        raise ValueError("sample_rate must lie in (0, 1]")
    if clip <= 0:
        raise ValueError("clip bound must be positive")
    if noise_multiplier < 0:
        raise ValueError("noise multiplier must be non-negative")
    for _ in range(max(0, steps)):
        dpsgd_step(
            model, loss, x, y, lr, clip, noise_multiplier, sample_rate, rng,
            microbatch_size=microbatch_size, engine=engine,
        )
