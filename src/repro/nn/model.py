"""Model container, parameter flattening, and benchmark model factories.

Federated learning exchanges *flat parameter vectors*; the
:class:`Sequential` container therefore provides ``get_flat_params`` /
``set_flat_params`` / ``get_flat_grads`` along with clone support so each
(user, silo) local optimisation can start from the global parameters
without re-allocating layer structure.

Factories reproduce the paper's model sizes:

- :func:`build_creditcard_mlp` -- MLP with ~4K parameters (Section 5.1).
- :func:`build_mnist_cnn` -- CNN with ~20K parameters.
- :func:`build_logistic` -- logistic model (< 100 params, HeartDisease).
- :func:`build_cox_linear` -- linear Cox risk model (< 100 params, TcgaBrca).
"""

from __future__ import annotations

import copy
import weakref

import numpy as np

from repro.nn.layers import (
    AvgPool2d,
    BatchedConv2d,
    BatchedFlatten,
    BatchedLinear,
    Conv2d,
    Flatten,
    Layer,
    Linear,
    MaxPool2d,
    ReLU,
    Tanh,
)


class Sequential:
    """A feed-forward stack of layers with flat-parameter accessors."""

    def __init__(self, layers: list[Layer]):
        self.layers = layers

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    __call__ = forward

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    @property
    def params(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.params]

    @property
    def grads(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.grads]

    @property
    def num_params(self) -> int:
        return sum(p.size for p in self.params)

    def get_flat_params(self) -> np.ndarray:
        """Concatenate all parameters into one float64 vector (copy)."""
        if not self.params:
            return np.zeros(0)
        return np.concatenate([p.ravel() for p in self.params])

    def set_flat_params(self, flat: np.ndarray) -> None:
        """Load parameters from a flat vector (in-place, preserves views)."""
        flat = np.asarray(flat, dtype=np.float64)
        if flat.size != self.num_params:
            raise ValueError(
                f"expected {self.num_params} parameters, got {flat.size}"
            )
        offset = 0
        for p in self.params:
            p[...] = flat[offset : offset + p.size].reshape(p.shape)
            offset += p.size

    def get_flat_grads(self) -> np.ndarray:
        if not self.grads:
            return np.zeros(0)
        return np.concatenate([g.ravel() for g in self.grads])

    def clone(self) -> "Sequential":
        """Deep copy (independent parameters and caches)."""
        return copy.deepcopy(self)


class BatchedSequential(Sequential):
    """``G`` independent copies of a :class:`Sequential`, trained in lockstep.

    Every parameterised layer carries a leading group axis, so one
    forward/backward moves all ``G`` models at once -- the substrate of the
    vectorized multi-user engine (:mod:`repro.core.engine`).  The flat
    parameter interface becomes matrix-valued: ``get_flat_params`` returns a
    ``(G, P)`` matrix whose row ``g`` uses exactly the same layout as the
    template model's flat vector, and ``set_flat_params`` accepts either a
    ``(P,)`` vector (broadcast to every group -- "all users start from the
    global model") or a ``(G, P)`` matrix.
    """

    def __init__(self, layers: list[Layer], groups: int):
        super().__init__(layers)
        if groups < 1:
            raise ValueError("need at least one group")
        self.groups = groups

    @property
    def num_params(self) -> int:
        """Per-group parameter count (matches the template model's)."""
        return sum(p[0].size for p in self.params)

    def get_flat_params(self) -> np.ndarray:
        """Per-group flat parameters as a ``(G, P)`` matrix (copy)."""
        if not self.params:
            return np.zeros((self.groups, 0))
        return np.concatenate([p.reshape(self.groups, -1) for p in self.params], axis=1)

    def set_flat_params(self, flat: np.ndarray) -> None:
        """Load parameters from a ``(P,)`` vector (broadcast) or ``(G, P)`` matrix."""
        flat = np.asarray(flat, dtype=np.float64)
        if flat.ndim == 1:
            # Broadcast-on-write: every group gets the same global vector
            # without materialising a (G, P) intermediate.
            if flat.size != self.num_params:
                raise ValueError(
                    f"expected {self.num_params} parameters, got {flat.size}"
                )
            offset = 0
            for p in self.params:
                size = p[0].size
                p[...] = flat[offset : offset + size].reshape(p.shape[1:])
                offset += size
            return
        if flat.shape != (self.groups, self.num_params):
            raise ValueError(
                f"expected ({self.groups}, {self.num_params}) parameters, "
                f"got {flat.shape}"
            )
        offset = 0
        for p in self.params:
            size = p[0].size
            p[...] = flat[:, offset : offset + size].reshape(p.shape)
            offset += size

    def get_flat_grads(self) -> np.ndarray:
        """Per-group flat gradients as a ``(G, P)`` matrix."""
        if not self.grads:
            return np.zeros((self.groups, 0))
        return np.concatenate([g.reshape(self.groups, -1) for g in self.grads], axis=1)


#: Cache of batched replicas keyed by template model (weakly) and group
#: count.  The multi-user engine requests the same (template, groups)
#: combination every round; rebuilding would re-allocate -- and re-fault --
#: hundreds of megabytes of parameter/gradient storage per round.
_BATCHED_CACHE: "weakref.WeakKeyDictionary[Sequential, dict[int, BatchedSequential]]" = (
    weakref.WeakKeyDictionary()
)


def batch_model(
    template: Sequential, groups: int, reuse: bool = False
) -> BatchedSequential:
    """Replicate ``template`` into a :class:`BatchedSequential` of ``groups`` copies.

    Parameterised layers become their ``Batched*`` counterparts (allocated
    as zeros -- load them with ``set_flat_params``); stateless layers are
    recreated fresh.  The per-group flat parameter layout matches the
    template's, so global parameter vectors move between the two unchanged.

    With ``reuse=True`` the replica is cached per (template, groups) and
    returned again on the next call with *stale parameters and gradients*
    -- callers must load parameters and zero gradients before use (the
    engine always does).
    """
    if reuse:
        per_template = _BATCHED_CACHE.setdefault(template, {})
        cached = per_template.get(groups)
        if cached is not None:
            return cached
        if len(per_template) >= 8:
            # Bound the cached storage when group counts churn (e.g. Poisson
            # sub-sampling produces a different count every round).
            per_template.clear()
        built = batch_model(template, groups, reuse=False)
        per_template[groups] = built
        return built
    layers: list[Layer] = []
    for layer in template.layers:
        if isinstance(layer, Linear):
            layers.append(
                BatchedLinear(layer.weight.shape[0], layer.weight.shape[1], groups)
            )
        elif isinstance(layer, Conv2d):
            layers.append(
                BatchedConv2d(
                    layer.weight.shape[1],
                    layer.weight.shape[0],
                    layer.kernel_size,
                    groups,
                    stride=layer.stride,
                    padding=layer.padding,
                )
            )
        elif isinstance(layer, Flatten):
            layers.append(BatchedFlatten())
        elif isinstance(layer, ReLU):
            layers.append(ReLU())
        elif isinstance(layer, Tanh):
            layers.append(Tanh())
        elif isinstance(layer, MaxPool2d):
            layers.append(MaxPool2d(layer.size))
        elif isinstance(layer, AvgPool2d):
            layers.append(AvgPool2d(layer.size))
        else:
            raise TypeError(
                f"no batched counterpart for layer {type(layer).__name__}"
            )
    if layers and isinstance(layers[0], (BatchedLinear, BatchedConv2d)):
        # Nothing consumes the input gradient of the first layer.
        layers[0].skip_input_grad = True
    return BatchedSequential(layers, groups)


def build_tiny_mlp(
    in_features: int, hidden: int, out_features: int, rng: np.random.Generator
) -> Sequential:
    """Small two-layer MLP, the workhorse for fast unit tests."""
    return Sequential(
        [
            Linear(in_features, hidden, rng),
            ReLU(),
            Linear(hidden, out_features, rng),
        ]
    )


def build_creditcard_mlp(rng: np.random.Generator, in_features: int = 30) -> Sequential:
    """MLP for the Creditcard task (~4K parameters, two logits out)."""
    return Sequential(
        [
            Linear(in_features, 64, rng),
            ReLU(),
            Linear(64, 32, rng),
            ReLU(),
            Linear(32, 2, rng),
        ]
    )


def build_mnist_cnn(rng: np.random.Generator, image_size: int = 14, n_classes: int = 10) -> Sequential:
    """CNN for the MNIST-like task (~20K parameters at the default size)."""
    after_pool = image_size // 2 // 2
    flat = 32 * after_pool * after_pool
    return Sequential(
        [
            Conv2d(1, 16, 3, rng, padding=1),
            ReLU(),
            MaxPool2d(2),
            Conv2d(16, 32, 3, rng, padding=1),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Linear(flat, 48, rng),
            ReLU(),
            Linear(48, n_classes, rng),
        ]
    )


def build_logistic(rng: np.random.Generator, in_features: int = 13) -> Sequential:
    """Logistic model for HeartDisease (single logit output)."""
    return Sequential([Linear(in_features, 1, rng)])


def build_cox_linear(rng: np.random.Generator, in_features: int = 39) -> Sequential:
    """Linear Cox risk-score model for TcgaBrca (single score output)."""
    return Sequential([Linear(in_features, 1, rng)])
