"""Model container, parameter flattening, and benchmark model factories.

Federated learning exchanges *flat parameter vectors*; the
:class:`Sequential` container therefore provides ``get_flat_params`` /
``set_flat_params`` / ``get_flat_grads`` along with clone support so each
(user, silo) local optimisation can start from the global parameters
without re-allocating layer structure.

Factories reproduce the paper's model sizes:

- :func:`build_creditcard_mlp` -- MLP with ~4K parameters (Section 5.1).
- :func:`build_mnist_cnn` -- CNN with ~20K parameters.
- :func:`build_logistic` -- logistic model (< 100 params, HeartDisease).
- :func:`build_cox_linear` -- linear Cox risk model (< 100 params, TcgaBrca).
"""

from __future__ import annotations

import copy

import numpy as np

from repro.nn.layers import Conv2d, Flatten, Layer, Linear, MaxPool2d, ReLU


class Sequential:
    """A feed-forward stack of layers with flat-parameter accessors."""

    def __init__(self, layers: list[Layer]):
        self.layers = layers

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    __call__ = forward

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    @property
    def params(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.params]

    @property
    def grads(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.grads]

    @property
    def num_params(self) -> int:
        return sum(p.size for p in self.params)

    def get_flat_params(self) -> np.ndarray:
        """Concatenate all parameters into one float64 vector (copy)."""
        if not self.params:
            return np.zeros(0)
        return np.concatenate([p.ravel() for p in self.params])

    def set_flat_params(self, flat: np.ndarray) -> None:
        """Load parameters from a flat vector (in-place, preserves views)."""
        flat = np.asarray(flat, dtype=np.float64)
        if flat.size != self.num_params:
            raise ValueError(
                f"expected {self.num_params} parameters, got {flat.size}"
            )
        offset = 0
        for p in self.params:
            p[...] = flat[offset : offset + p.size].reshape(p.shape)
            offset += p.size

    def get_flat_grads(self) -> np.ndarray:
        if not self.grads:
            return np.zeros(0)
        return np.concatenate([g.ravel() for g in self.grads])

    def clone(self) -> "Sequential":
        """Deep copy (independent parameters and caches)."""
        return copy.deepcopy(self)


def build_tiny_mlp(
    in_features: int, hidden: int, out_features: int, rng: np.random.Generator
) -> Sequential:
    """Small two-layer MLP, the workhorse for fast unit tests."""
    return Sequential(
        [
            Linear(in_features, hidden, rng),
            ReLU(),
            Linear(hidden, out_features, rng),
        ]
    )


def build_creditcard_mlp(rng: np.random.Generator, in_features: int = 30) -> Sequential:
    """MLP for the Creditcard task (~4K parameters, two logits out)."""
    return Sequential(
        [
            Linear(in_features, 64, rng),
            ReLU(),
            Linear(64, 32, rng),
            ReLU(),
            Linear(32, 2, rng),
        ]
    )


def build_mnist_cnn(rng: np.random.Generator, image_size: int = 14, n_classes: int = 10) -> Sequential:
    """CNN for the MNIST-like task (~20K parameters at the default size)."""
    after_pool = image_size // 2 // 2
    flat = 32 * after_pool * after_pool
    return Sequential(
        [
            Conv2d(1, 16, 3, rng, padding=1),
            ReLU(),
            MaxPool2d(2),
            Conv2d(16, 32, 3, rng, padding=1),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Linear(flat, 48, rng),
            ReLU(),
            Linear(48, n_classes, rng),
        ]
    )


def build_logistic(rng: np.random.Generator, in_features: int = 13) -> Sequential:
    """Logistic model for HeartDisease (single logit output)."""
    return Sequential([Linear(in_features, 1, rng)])


def build_cox_linear(rng: np.random.Generator, in_features: int = 39) -> Sequential:
    """Linear Cox risk-score model for TcgaBrca (single score output)."""
    return Sequential([Linear(in_features, 1, rng)])
