"""Shared-weight per-group gradient engine.

Several hot paths need *per-group* gradients of one shared model: the
per-user gradients of ULDP-SGD, the per-microbatch gradients of DP-SGD,
and the first (often only) local step of ULDP-AVG -- in every case the
parameters are identical across groups because no group has taken a
divergent step yet.  That structure admits a much faster evaluation than
the general per-group-parameters engine (:class:`repro.nn.model.BatchedSequential`):

1. concatenate all groups' records into one flat batch (no padding) and
   run a single forward pass;
2. compute each group's mean-loss gradient w.r.t. its predictions with the
   ``Batched*`` losses (padding only the scalar-sized prediction tensors);
3. walk the layers backward once, sharing the input-gradient computation
   (the weights are identical) and segmenting only the parameter-gradient
   reductions by group.

Convolutional stacks additionally run in a channels-last (NHWC) layout
internally: patch matrices come out of im2col directly in GEMM order, the
flattened ``(B*P, out_c)`` activation gradients need no transposes, and the
pooling windows slice contiguous channel runs.  Results are converted back
to the template's NCHW parameter layout during assembly, so callers see
the standard flat-parameter order throughout.

The result matches running the model separately per group up to
floating-point reassociation (the differential tests in
``tests/core/test_engine_equivalence.py`` cover this path through the FL
methods).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Tanh,
    _col2im,
)
from repro.nn.losses import Loss, batched_counterpart
from repro.nn.model import Sequential


def _scatter_padded(
    values: np.ndarray, flat_idx: np.ndarray, groups: int, n_max: int
) -> np.ndarray:
    """Scatter per-record rows into a zero-padded (G, n_max, ...) tensor."""
    padded = np.zeros((groups * n_max, *values.shape[1:]))
    padded[flat_idx] = values
    return padded.reshape(groups, n_max, *values.shape[1:])


def _segment_sum(values: np.ndarray, starts: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Sum contiguous row segments: out[g] = values[starts[g] : starts[g]+sizes[g]].sum(0).

    A plain slice loop: an order of magnitude faster than ``np.add.reduceat``
    on wide matrices, and the segments are contiguous by construction.
    """
    values = values.reshape(len(values), -1)
    out = np.empty((len(starts), values.shape[1]))
    for g in range(len(starts)):
        start = starts[g]
        np.sum(values[start : start + sizes[g]], axis=0, out=out[g])
    return out


def _segment_gemm(
    a: np.ndarray, b: np.ndarray, starts: np.ndarray, sizes: np.ndarray
) -> np.ndarray:
    """Per-segment GEMMs: out[g] = a[rows_g].T @ b[rows_g] over contiguous rows."""
    out = np.empty((len(starts), a.shape[1], b.shape[1]))
    for g in range(len(starts)):
        start = starts[g]
        stop = start + sizes[g]
        np.matmul(a[start:stop].T, b[start:stop], out=out[g])
    return out


# ---------------------------------------------------------------------------
# NHWC image-stack kernels (used only inside the shared-weight walk).
# ---------------------------------------------------------------------------


def _im2col_nhwc(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> tuple[np.ndarray, int, int]:
    """Unfold (N, H, W, C) into (N*P, kh*kw*C) patches with one gather."""
    n, h, w, c = x.shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    if pad:
        x = np.pad(x, ((0, 0), (pad, pad), (pad, pad), (0, 0)))
    s = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, out_h, out_w, kh, kw, c),
        strides=(s[0], s[1] * stride, s[2] * stride, s[1], s[2], s[3]),
        writeable=False,
    )
    cols = np.ascontiguousarray(view).reshape(n * out_h * out_w, kh * kw * c)
    return cols, out_h, out_w


def _col2im_nhwc(
    dcols: np.ndarray,
    x_shape: tuple[int, ...],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Adjoint of :func:`_im2col_nhwc`; ``dcols`` is (N, oh, ow, kh, kw, C)."""
    n, h, w, c = x_shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    padded = np.zeros((n, h + 2 * pad, w + 2 * pad, c))
    for i in range(kh):
        for j in range(kw):
            padded[
                :, i : i + stride * out_h : stride, j : j + stride * out_w : stride, :
            ] += dcols[:, :, :, i, j, :]
    if pad:
        return padded[:, pad:-pad, pad:-pad, :]
    return padded


def _maxpool_nhwc_forward(x: np.ndarray, size: int) -> np.ndarray:
    n, h, w, c = x.shape
    s = size
    oh, ow = h // s, w // s
    out = x[:, 0 : oh * s : s, 0 : ow * s : s, :].copy()
    for i in range(s):
        for j in range(s):
            if i or j:
                np.maximum(out, x[:, i : oh * s : s, j : ow * s : s, :], out=out)
    return out


def _maxpool_nhwc_backward(
    x: np.ndarray, out: np.ndarray, grad: np.ndarray, size: int
) -> np.ndarray:
    n, h, w, c = x.shape
    s = size
    oh, ow = out.shape[1], out.shape[2]
    masks = [
        [x[:, i : oh * s : s, j : ow * s : s, :] == out for j in range(s)]
        for i in range(s)
    ]
    counts = np.zeros_like(out)
    for row in masks:
        for mask in row:
            counts += mask
    scaled = grad / counts
    dx = np.zeros(x.shape)
    for i in range(s):
        for j in range(s):
            dx[:, i : oh * s : s, j : ow * s : s, :] = masks[i][j] * scaled
    return dx


def _conv_stack(model: Sequential):
    """Split a CNN into (image stages, flatten position, dense stages).

    Returns ``None`` when the model does not match the supported
    ``image-stages -> Flatten -> dense-stages`` shape (the generic walk
    handles those).
    """
    layers = model.layers
    flatten_at = None
    for i, layer in enumerate(layers):
        if isinstance(layer, Flatten):
            flatten_at = i
            break
    if flatten_at is None:
        return None
    image, dense = layers[:flatten_at], layers[flatten_at + 1 :]
    if not any(isinstance(l, Conv2d) for l in image):
        return None
    for layer in image:
        if not isinstance(layer, (Conv2d, MaxPool2d, AvgPool2d, ReLU, Tanh)):
            return None
    for layer in dense:
        if not isinstance(layer, (Linear, ReLU, Tanh)):
            return None
    return image, flatten_at, dense


def per_group_gradients(
    model: Sequential,
    loss: Loss,
    x: np.ndarray,
    y: np.ndarray,
    sizes,
    out: np.ndarray | None = None,
    row_scale=None,
    norms_out: np.ndarray | None = None,
) -> np.ndarray:
    """Per-group gradients of the mean loss, sharing one forward/backward.

    Args:
        model: the shared model, already holding the evaluation parameters.
            Its layer caches may be clobbered (like any ``forward`` call).
        loss: a per-batch loss instance; its batched counterpart supplies
            the per-group prediction gradients (degenerate groups -- e.g.
            Cox batches without events -- contribute zero rows, matching
            the loop convention).
        x, y: all groups' records, concatenated in group order.
        sizes: per-group record counts (all >= 1, summing to ``len(x)``).
        out: optional preallocated ``(len(sizes), P)`` result buffer
            (reusing one across rounds avoids re-faulting large matrices).
        row_scale: optional callable mapping the ``(G,)`` gradient l2 norms
            to per-row multipliers applied *during* assembly.  This fuses
            clip-and-scale into the single write pass over the result
            matrix -- the ULDP hot path (clip to C, scale by -lr) -- instead
            of re-reading the large matrix afterwards.  Rows whose
            multiplier is 0 are written as exact zeros (the non-finite /
            fully-clipped convention).
        norms_out: optional ``(G,)`` buffer receiving the gradient l2 norms
            (computed from cache-warm per-layer blocks, no extra pass).

    Returns:
        ``(len(sizes), P)`` matrix whose row g equals the flat gradient of
        group g's mean loss at the shared parameters, scaled row-wise by
        ``row_scale`` when given.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    if sizes.size == 0:
        return np.zeros((0, model.num_params))
    if np.any(sizes < 1):
        raise ValueError("every group needs at least one record")
    groups = len(sizes)
    total = int(sizes.sum())
    if total != len(x):
        raise ValueError("sizes must sum to the number of records")
    starts = np.zeros(groups, dtype=np.int64)
    np.cumsum(sizes[:-1], out=starts[1:])
    n_max = int(sizes.max())
    group_of = np.repeat(np.arange(groups), sizes)
    flat_idx = np.arange(total) - starts[group_of] + group_of * n_max

    ctx = _GroupContext(groups, n_max, starts, sizes, flat_idx)
    stack = _conv_stack(model)
    if stack is not None:
        pred, backward = _forward_conv_nhwc(model, stack, np.asarray(x, dtype=np.float64), ctx)
    else:
        pred, backward = _forward_generic(model, np.asarray(x, dtype=np.float64), ctx)

    y_arr = np.asarray(y, dtype=np.float64)
    mask = np.zeros(groups * n_max, dtype=bool)
    mask[flat_idx] = True
    batched_loss = batched_counterpart(loss)
    batched_loss.forward(
        _scatter_padded(pred, flat_idx, groups, n_max),
        _scatter_padded(y_arr, flat_idx, groups, n_max),
        mask.reshape(groups, n_max),
    )
    dpred = batched_loss.backward().reshape(groups * n_max, *pred.shape[1:])[flat_idx]

    blocks = backward(dpred)

    if out is None:
        out = np.empty((groups, model.num_params))
    elif out.shape != (groups, model.num_params):
        raise ValueError("out buffer has the wrong shape")

    scale = None
    if row_scale is not None or norms_out is not None:
        sq = np.zeros(groups)
        for index in blocks:
            for block in blocks[index]:
                sq += np.einsum("gk,gk->g", block, block)
        norms = np.sqrt(sq)
        if norms_out is not None:
            norms_out[...] = norms
        if row_scale is not None:
            scale = np.asarray(row_scale(norms), dtype=np.float64)

    offset = 0
    for index, layer in enumerate(model.layers):
        for block in blocks.get(index, ()):
            view = out[:, offset : offset + block.shape[1]]
            if scale is None:
                view[...] = block
            else:
                np.multiply(block, scale[:, None], out=view)
            offset += block.shape[1]
    if scale is not None:
        dropped = scale == 0.0
        if np.any(dropped):
            # 0 * inf leaves NaNs behind; dropped rows are exact zeros.
            out[dropped] = 0.0
    return out


class _GroupContext:
    """Shared per-call indexing: group boundaries and padding scatter."""

    def __init__(self, groups, n_max, starts, sizes, flat_idx):
        self.groups = groups
        self.n_max = n_max
        self.starts = starts
        self.sizes = sizes
        self.flat_idx = flat_idx


def _linear_blocks(layer: Linear, x_in, grad, ctx: _GroupContext):
    """Per-group (dW, db) of one dense layer from its input and output grads.

    Records are concatenated in group order, so both reductions run over
    contiguous row segments -- no padding or scatter needed.
    """
    d_weight = _segment_gemm(x_in, grad, ctx.starts, ctx.sizes)  # (G, in, out)
    d_bias = _segment_sum(grad, ctx.starts, ctx.sizes)
    return [d_weight.reshape(ctx.groups, -1), d_bias]


def _forward_generic(model: Sequential, x: np.ndarray, ctx: _GroupContext):
    """Standard-layout walk (dense models and unrecognised structures)."""
    pred = model.forward(x)

    def backward(grad: np.ndarray) -> dict[int, list[np.ndarray]]:
        blocks: dict[int, list[np.ndarray]] = {}
        for index in range(len(model.layers) - 1, -1, -1):
            layer = model.layers[index]
            if isinstance(layer, Linear):
                if layer._x is None:
                    raise RuntimeError("backward walk before forward")
                blocks[index] = _linear_blocks(layer, layer._x, grad, ctx)
                if index > 0:
                    grad = grad @ layer.weight.T
            elif isinstance(layer, Conv2d):
                if layer._cache is None:
                    raise RuntimeError("backward walk before forward")
                x_shape, cols = layer._cache  # cols: (B, C*k*k, P)
                out_c = layer.weight.shape[0]
                go = grad.reshape(grad.shape[0], out_c, -1)  # (B, out_c, P)
                dw_samples = go @ cols.transpose(0, 2, 1)  # (B, out_c, C*k*k)
                blocks[index] = [
                    _segment_sum(dw_samples, ctx.starts, ctx.sizes),
                    _segment_sum(go.sum(axis=2), ctx.starts, ctx.sizes),
                ]
                if index > 0:
                    w_row = layer.weight.reshape(out_c, -1)
                    dcols = np.matmul(w_row.T[None], go)  # (B, C*k*k, P)
                    k = layer.kernel_size
                    grad = _col2im(dcols, x_shape, k, k, layer.stride, layer.padding)
            elif layer.params:
                raise TypeError(
                    f"no shared-weight gradient rule for {type(layer).__name__}"
                )
            else:
                if index > 0:
                    grad = layer.backward(grad)
        return blocks

    return pred, backward


def _forward_conv_nhwc(model: Sequential, stack, x: np.ndarray, ctx: _GroupContext):
    """Channels-last walk for ``image-stages -> Flatten -> dense`` models."""
    image, flatten_at, dense = stack
    b = len(x)
    act = np.ascontiguousarray(x.transpose(0, 2, 3, 1))  # NCHW -> NHWC
    caches: list[tuple] = []
    for layer in image:
        if isinstance(layer, Conv2d):
            k = layer.kernel_size
            in_shape = act.shape
            cols, oh, ow = _im2col_nhwc(act, k, k, layer.stride, layer.padding)
            out_c, in_c = layer.weight.shape[:2]
            # Template (out_c, C, kh, kw) -> NHWC patch order (kh, kw, C).
            w_nhwc = np.ascontiguousarray(
                layer.weight.transpose(2, 3, 1, 0)
            ).reshape(-1, out_c)
            z = cols @ w_nhwc  # one GEMM: (B*P, out_c)
            z += layer.bias[None, :]
            act = z.reshape(b, oh, ow, out_c)
            caches.append(("conv", layer, in_shape, cols, w_nhwc, oh, ow))
        elif isinstance(layer, MaxPool2d):
            pooled = _maxpool_nhwc_forward(act, layer.size)
            caches.append(("maxpool", layer, act, pooled))
            act = pooled
        elif isinstance(layer, AvgPool2d):
            s = layer.size
            n, h, w, c = act.shape
            oh, ow = h // s, w // s
            acc = act[:, 0 : oh * s : s, 0 : ow * s : s, :].copy()
            for i in range(s):
                for j in range(s):
                    if i or j:
                        acc += act[:, i : oh * s : s, j : ow * s : s, :]
            caches.append(("avgpool", layer, act.shape))
            act = acc / (s * s)
        elif isinstance(layer, ReLU):
            act = np.maximum(act, 0.0)
            caches.append(("relu", layer, act))
        else:  # Tanh
            act = np.tanh(act)
            caches.append(("tanh", layer, act))
    image_out_shape = act.shape  # (B, H, W, C)
    h, w, c = image_out_shape[1:]
    # NHWC flatten order (h, w, c) -> template NCHW feature index c*H*W + h*W + w.
    # Permuting the (small) flat activations once keeps the whole dense
    # section -- weights and weight gradients -- in the template basis.
    perm = np.arange(c * h * w).reshape(c, h, w).transpose(1, 2, 0).ravel()
    flat = np.empty((b, c * h * w))
    flat[:, perm] = act.reshape(b, -1)
    act = flat

    dense_caches: list[tuple] = []
    for layer in dense:
        if isinstance(layer, Linear):
            dense_caches.append(("linear", layer, act))
            act = act @ layer.weight + layer.bias
        elif isinstance(layer, ReLU):
            act = np.maximum(act, 0.0)
            dense_caches.append(("relu", layer, act))
        else:  # Tanh
            act = np.tanh(act)
            dense_caches.append(("tanh", layer, act))
    pred = act

    def backward(grad: np.ndarray) -> dict[int, list[np.ndarray]]:
        blocks: dict[int, list[np.ndarray]] = {}
        g = grad
        for offset in range(len(dense) - 1, -1, -1):
            kind, layer, *cache = dense_caches[offset]
            index = flatten_at + 1 + offset
            if kind == "linear":
                blocks[index] = _linear_blocks(layer, cache[0], g, ctx)
                g = g @ layer.weight.T
            elif kind == "relu":
                g = g * (cache[0] > 0)
            else:
                g = g * (1.0 - cache[0] ** 2)
        g = g[:, perm].reshape(image_out_shape)
        for pos in range(len(image) - 1, -1, -1):
            kind, layer, *cache = caches[pos]
            if kind == "conv":
                in_shape, cols, w_nhwc, oh, ow = cache
                out_c = layer.weight.shape[0]
                go_flat = g.reshape(-1, out_c)  # (B*P, out_c), already contiguous
                row_starts = ctx.starts * oh * ow
                row_sizes = ctx.sizes * oh * ow
                dw = _segment_gemm(cols, go_flat, row_starts, row_sizes)
                k = layer.kernel_size
                in_c = layer.weight.shape[1]
                # NHWC patch basis (kh, kw, C, out_c) -> template (out_c, C, kh, kw).
                dw = np.ascontiguousarray(
                    dw.reshape(ctx.groups, k, k, in_c, out_c).transpose(0, 4, 3, 1, 2)
                ).reshape(ctx.groups, -1)
                db = _segment_sum(go_flat, row_starts, row_sizes)
                blocks[pos] = [dw, db]
                if pos > 0:
                    dcols = go_flat @ w_nhwc.T  # one GEMM: (B*P, F)
                    g = _col2im_nhwc(
                        dcols.reshape(b, oh, ow, k, k, in_c),
                        in_shape, k, k, layer.stride, layer.padding,
                    )
            elif kind == "maxpool":
                x_in, pooled = cache
                g = _maxpool_nhwc_backward(x_in, pooled, g, layer.size)
            elif kind == "avgpool":
                (in_shape,) = cache
                s = layer.size
                n, h_, w_, c_ = in_shape
                oh, ow = h_ // s, w_ // s
                dx = np.zeros(in_shape)
                spread = g / (s * s)
                for i in range(s):
                    for j in range(s):
                        dx[:, i : oh * s : s, j : ow * s : s, :] = spread
                g = dx
            elif kind == "relu":
                g = g * (cache[0] > 0)
            else:
                g = g * (1.0 - cache[0] ** 2)
        return blocks

    return pred, backward
