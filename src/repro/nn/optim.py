"""Optimisers for the numpy substrate.

Only plain SGD is needed: the paper's local solvers are vanilla SGD with a
local learning rate eta_l, and the server-side update uses a separate global
learning rate eta_g (two-sided learning rates, Yang et al. 2021), which the
trainer applies directly to flat parameter vectors.
"""

from __future__ import annotations

from repro.nn.model import Sequential


class SGD:
    """Vanilla stochastic gradient descent on a :class:`Sequential` model."""

    def __init__(self, model: Sequential, lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.model = model
        self.lr = lr

    def step(self) -> None:
        """Apply one descent step using the gradients stored in the model."""
        for p, g in zip(self.model.params, self.model.grads):
            p -= self.lr * g

    def zero_grad(self) -> None:
        self.model.zero_grad()
