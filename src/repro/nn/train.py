"""Mini-batch training and evaluation helpers.

These are the local solvers used inside the FL client algorithms:
``train_epochs`` runs plain SGD over a (possibly tiny) dataset -- the
"Compute stochastic gradients / descend" inner loops of Algorithms 1-3.
"""

from __future__ import annotations

import numpy as np

from repro.nn.losses import DegenerateBatchError, Loss
from repro.nn.model import Sequential
from repro.nn.optim import SGD


def iterate_minibatches(
    n: int, batch_size: int, rng: np.random.Generator, shuffle: bool = True
):
    """Yield index arrays covering ``range(n)`` in batches.

    Full-batch iteration (batch_size >= n) skips shuffling entirely -- the
    order is irrelevant for a single batch, and not consuming the RNG keeps
    plaintext and secure-protocol training streams aligned (their per-user
    work differs under sub-sampling, but neither draws randomness here).
    """
    if batch_size >= n:
        yield np.arange(n)
        return
    order = rng.permutation(n) if shuffle else np.arange(n)
    for start in range(0, n, batch_size):
        yield order[start : start + batch_size]


def train_epochs(
    model: Sequential,
    loss: Loss,
    x: np.ndarray,
    y: np.ndarray,
    lr: float,
    epochs: int,
    rng: np.random.Generator,
    batch_size: int | None = None,
) -> float:
    """Train in place for ``epochs`` passes; returns the final batch loss.

    ``batch_size=None`` uses full-batch gradient descent, which matches the
    per-user inner loop of ULDP-AVG where user datasets are tiny (the paper
    notes full-batch descent eliminates one of the clipping-bias terms).
    """
    n = x.shape[0]
    if n == 0:
        raise ValueError("cannot train on an empty dataset")
    batch = n if batch_size is None else max(1, min(batch_size, n))
    optimiser = SGD(model, lr)
    last = 0.0
    for _ in range(max(0, epochs)):
        for idx in iterate_minibatches(n, batch, rng):
            optimiser.zero_grad()
            pred = model.forward(x[idx])
            try:
                last = loss.forward(pred, y[idx])
            except DegenerateBatchError:
                # Partial-likelihood losses are undefined on some batches
                # (e.g. Cox with no events); skip them.
                continue
            model.backward(loss.backward())
            optimiser.step()
    return last


def predict(model: Sequential, x: np.ndarray, batch_size: int = 512) -> np.ndarray:
    """Forward pass in batches; returns stacked model outputs."""
    outputs = [model.forward(x[i : i + batch_size]) for i in range(0, x.shape[0], batch_size)]
    return np.concatenate(outputs, axis=0) if outputs else np.zeros((0,))


def evaluate_loss(model: Sequential, loss: Loss, x: np.ndarray, y: np.ndarray) -> float:
    """Mean loss over a dataset (single full-batch forward)."""
    return loss.forward(model.forward(x), y)


def evaluate_accuracy(model: Sequential, x: np.ndarray, y: np.ndarray) -> float:
    """Classification accuracy.

    Multi-logit outputs use argmax; single-logit outputs threshold at 0.
    """
    pred = predict(model, x)
    if pred.ndim == 2 and pred.shape[1] > 1:
        labels = pred.argmax(axis=1)
    else:
        labels = (pred.ravel() > 0).astype(np.int64)
    return float((labels == np.asarray(y).ravel()).mean())
