"""Loss-threshold membership inference at record and user level.

The attack model (Yeom et al. 2018; the paper cites the Jayaraman & Evans
2019 evaluation as reference [20]): the adversary holds candidate records
(or users), queries the released model for per-record losses, and predicts
"member" when the loss is low.  Score = negative loss, so higher means
more member-like.

Two granularities, mirroring the record-level vs user-level DP split the
paper is about:

- **record-level**: one score per record; members are training records.
- **user-level**: one score per user -- the mean score over all of the
  user's records *across all silos*.  This is the attack surface that
  record-level DP fails to bound when users hold many records (the
  cumulative-risk argument of the paper's introduction) and the one ULDP
  is designed to protect.

Outputs are threshold-free metrics: ROC AUC and the maximum membership
advantage (max over thresholds of TPR - FPR; 0 = chance, 1 = total leak).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import make_loss
from repro.core.trainer import Trainer, default_model_for
from repro.data.federated import FederatedDataset
from repro.nn.model import Sequential


def _per_record_losses(
    model: Sequential, task: str, x: np.ndarray, y: np.ndarray
) -> np.ndarray:
    """Per-record losses under the task's loss function.

    Computed record by record (the survival partial likelihood is not
    separable; for the attack we approximate a record's loss by its loss
    within the full candidate set, which is what an attacker can compute).
    """
    if task == "survival":
        # Risk-set losses need context; score each record against the full
        # set by leaving the rest in place.
        loss = make_loss(task, model)
        pred = model.forward(x)
        base = loss.forward(pred, y)
        # Contribution proxy: per-record deviation of predicted risk from
        # the cohort mean, signed by event status (high risk + event =
        # well-fit = member-like).  Falls back to a separable proxy since
        # the Cox loss has no per-record decomposition.
        risk = pred.ravel()
        events = y[:, 1]
        proxy = -np.abs(risk - risk.mean()) * (1 - events) - (-risk) * events
        return base - proxy  # ordering is what matters for AUC
    losses = np.empty(len(x))
    loss = make_loss(task, model)
    for i in range(len(x)):
        pred = model.forward(x[i : i + 1])
        losses[i] = loss.forward(pred, y[i : i + 1])
    return losses


def record_membership_scores(
    model: Sequential,
    fed: FederatedDataset,
) -> tuple[np.ndarray, np.ndarray]:
    """Record-level attack scores.

    Returns:
        (member_scores, nonmember_scores): negative per-record losses for
        all training records (members) and the held-out test records
        (non-members).
    """
    member_losses = np.concatenate(
        [
            _per_record_losses(model, fed.task, silo.x, silo.y)
            for silo in fed.silos
            if silo.n_records > 0
        ]
    )
    nonmember_losses = _per_record_losses(model, fed.task, fed.test_x, fed.test_y)
    return -member_losses, -nonmember_losses


def user_membership_scores(
    model: Sequential,
    fed: FederatedDataset,
    nonmember_groups: int | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """User-level attack scores: mean record score per user across silos.

    Non-member "users" are synthesised by grouping held-out test records
    into pseudo-users whose size distribution matches the real users'
    (size matters: averaging over more records sharpens the signal, which
    is exactly the cumulative risk user-level DP addresses).

    Returns:
        (member_scores, nonmember_scores): one score per (pseudo-)user.
    """
    rng = np.random.default_rng(0) if rng is None else rng

    member_scores = []
    per_user_losses: dict[int, list[float]] = {}
    for silo in fed.silos:
        if silo.n_records == 0:
            continue
        losses = _per_record_losses(model, fed.task, silo.x, silo.y)
        for user, loss_value in zip(silo.user_ids, losses):
            per_user_losses.setdefault(int(user), []).append(float(loss_value))
    sizes = []
    for user, losses in sorted(per_user_losses.items()):
        member_scores.append(-float(np.mean(losses)))
        sizes.append(len(losses))

    nonmember_losses = _per_record_losses(model, fed.task, fed.test_x, fed.test_y)
    n_groups = nonmember_groups if nonmember_groups is not None else len(sizes)
    order = rng.permutation(len(nonmember_losses))
    nonmember_scores = []
    pos = 0
    for g in range(n_groups):
        size = sizes[g % len(sizes)]
        take = order[pos : pos + size]
        if len(take) == 0:
            break
        nonmember_scores.append(-float(np.mean(nonmember_losses[take])))
        pos += size
        if pos >= len(nonmember_losses):
            pos = 0
            order = rng.permutation(len(nonmember_losses))
    return np.array(member_scores), np.array(nonmember_scores)


def attack_auc(member_scores: np.ndarray, nonmember_scores: np.ndarray) -> float:
    """ROC AUC of the threshold attack (0.5 = chance, 1.0 = total leak).

    Computed exactly as the Mann-Whitney U statistic.
    """
    members = np.asarray(member_scores, dtype=np.float64)
    others = np.asarray(nonmember_scores, dtype=np.float64)
    if len(members) == 0 or len(others) == 0:
        raise ValueError("need scores on both sides")
    wins = 0.0
    for m in members:
        wins += np.sum(m > others) + 0.5 * np.sum(m == others)
    return float(wins / (len(members) * len(others)))


def membership_advantage(
    member_scores: np.ndarray, nonmember_scores: np.ndarray
) -> float:
    """Max over thresholds of TPR - FPR (Yeom et al.'s advantage metric)."""
    members = np.sort(np.asarray(member_scores, dtype=np.float64))
    others = np.sort(np.asarray(nonmember_scores, dtype=np.float64))
    thresholds = np.unique(np.concatenate([members, others]))
    best = 0.0
    for t in thresholds:
        tpr = np.mean(members >= t)
        fpr = np.mean(others >= t)
        best = max(best, float(tpr - fpr))
    return best


@dataclass(frozen=True)
class MembershipResult:
    """Attack outcome for one trained model."""

    method: str
    record_auc: float
    record_advantage: float
    user_auc: float
    user_advantage: float

    def row(self) -> str:
        return (
            f"{self.method:<22s} record AUC={self.record_auc:.3f} "
            f"adv={self.record_advantage:.3f} | user AUC={self.user_auc:.3f} "
            f"adv={self.user_advantage:.3f}"
        )


def run_membership_experiment(
    fed: FederatedDataset,
    method,
    rounds: int,
    seed: int = 0,
    model: Sequential | None = None,
) -> MembershipResult:
    """Train with ``method`` and attack the final model at both levels."""
    rng = np.random.default_rng(seed)
    model = model if model is not None else default_model_for(fed, rng)
    Trainer(fed, method, rounds=rounds, model=model, seed=seed).run()

    rec_m, rec_n = record_membership_scores(model, fed)
    usr_m, usr_n = user_membership_scores(model, fed, rng=np.random.default_rng(seed))
    label = getattr(method, "display_name", method.name)
    return MembershipResult(
        method=label,
        record_auc=attack_auc(rec_m, rec_n),
        record_advantage=membership_advantage(rec_m, rec_n),
        user_auc=attack_auc(usr_m, usr_n),
        user_advantage=membership_advantage(usr_m, usr_n),
    )
