"""Empirical privacy attacks (the paper's future-work direction).

The paper's conclusion proposes "empirically compar[ing] the privacy
protection of user/record-level DP in FL in terms of particular attack
aspects such as user/record-level membership inference".  This package
implements that comparison: loss-threshold membership inference at both
granularities (Yeom et al. 2018 style), evaluated on models trained by any
method in :mod:`repro.core`.
"""

from repro.attacks.membership import (
    attack_auc,
    membership_advantage,
    record_membership_scores,
    run_membership_experiment,
    user_membership_scores,
)

__all__ = [
    "attack_auc",
    "membership_advantage",
    "record_membership_scores",
    "run_membership_experiment",
    "user_membership_scores",
]
