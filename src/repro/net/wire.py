"""Length-prefixed binary wire protocol for the federation runtime.

One message = one *frame*::

    magic (4B, b"UFL1") | hlen (u32 BE) | header (hlen bytes, JSON)
    | hcrc (u32 BE, CRC-32 of header) | blob bytes (concatenated, raw)

The JSON header carries the message type, an arbitrary JSON-safe
``payload``, and a manifest describing each ndarray blob::

    {"v": 1, "type": "compute", "payload": {...},
     "blobs": [{"name": "params", "dtype": "<f8",
                "shape": [4130], "crc": 3735928559}, ...]}

Arrays travel as their raw little/native-endian bytes (``dtype.str``
pins the byte order), each guarded by its own CRC-32 -- a flipped bit in
either header or payload surfaces as :class:`ChecksumError` instead of a
silently wrong aggregate.  The ``v`` field lets a future frame layout
coexist with silos speaking this one.

This module is deliberately dumb: bytes in, bytes out, no sockets other
than the blocking ``send_frame``/``recv_frame`` convenience pair.  Retry
and deadline policy live in :mod:`repro.net.transport`.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

MAGIC = b"UFL1"
WIRE_VERSION = 1

# Backstop against a garbled length prefix asking us to allocate gigabytes:
# generous for real traffic (a smoke-scale round frame is ~KBs, an MNIST CNN
# round ~MBs) yet small enough to fail fast on corruption.
MAX_FRAME_BYTES = 1 << 28

_U32 = struct.Struct(">I")


class WireError(ConnectionError):
    """A malformed, oversized, or version-mismatched frame."""


class ChecksumError(WireError):
    """Header or blob bytes failed their CRC-32 -- corruption in flight."""


class ConnectionClosed(WireError):
    """The peer closed the connection cleanly between frames."""


@dataclass
class Frame:
    """A decoded message: ``type`` tag, JSON payload, named ndarrays."""

    type: str
    payload: dict = field(default_factory=dict)
    arrays: dict = field(default_factory=dict)
    #: On-the-wire size of the frame this was decoded from (0 for frames
    #: constructed locally) -- what the transport's byte ledgers read.
    nbytes: int = 0


def pack_frame(msg_type: str, payload: dict | None = None,
               arrays: dict | None = None) -> bytes:
    """Serialise one message into its on-the-wire byte string."""
    blobs = []
    chunks = []
    for name, arr in (arrays or {}).items():
        arr = np.ascontiguousarray(arr)
        if arr.dtype == object:
            raise WireError(f"array {name!r} has object dtype; "
                            "only plain numeric arrays cross the wire")
        raw = arr.tobytes()
        blobs.append({
            "name": str(name),
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "crc": zlib.crc32(raw),
        })
        chunks.append(raw)
    header = json.dumps(
        {"v": WIRE_VERSION, "type": msg_type,
         "payload": payload or {}, "blobs": blobs},
        separators=(",", ":")).encode()
    parts = [MAGIC, _U32.pack(len(header)), header,
             _U32.pack(zlib.crc32(header))]
    parts.extend(chunks)
    out = b"".join(parts)
    if len(out) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(out)} bytes exceeds the "
                        f"{MAX_FRAME_BYTES}-byte wire limit")
    return out


def _read_exact(sock, n: int, *, at_frame_start: bool = False) -> bytes:
    """Read exactly ``n`` bytes or raise.

    A clean close *between* frames is :class:`ConnectionClosed` (normal
    shutdown); anywhere else a short read means a peer died mid-frame.
    """
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            if at_frame_start and not buf:
                raise ConnectionClosed("peer closed the connection")
            raise WireError(
                f"connection lost mid-frame ({len(buf)}/{n} bytes read)")
        buf.extend(chunk)
    return bytes(buf)


def send_frame(sock, msg_type: str, payload: dict | None = None,
               arrays: dict | None = None) -> None:
    """Pack and write one frame to a blocking socket."""
    sock.sendall(pack_frame(msg_type, payload, arrays))


def recv_frame(sock) -> Frame:
    """Read and verify one frame from a blocking socket."""
    magic = _read_exact(sock, 4, at_frame_start=True)
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r} (expected {MAGIC!r}); "
                        "peer is not speaking the UFL wire protocol")
    (hlen,) = _U32.unpack(_read_exact(sock, 4))
    if hlen > MAX_FRAME_BYTES:
        raise WireError(f"header length {hlen} exceeds the wire limit")
    raw_header = _read_exact(sock, hlen)
    (hcrc,) = _U32.unpack(_read_exact(sock, 4))
    if zlib.crc32(raw_header) != hcrc:
        raise ChecksumError("frame header failed its CRC-32 check")
    try:
        header = json.loads(raw_header)
    except json.JSONDecodeError as exc:
        raise WireError(f"frame header is not valid JSON: {exc}") from exc
    if header.get("v") != WIRE_VERSION:
        raise WireError(f"peer speaks wire version {header.get('v')!r}, "
                        f"this build speaks {WIRE_VERSION}")
    arrays = {}
    total = 4 + 4 + hlen + 4
    for blob in header.get("blobs", ()):
        dtype = np.dtype(blob["dtype"])
        shape = tuple(int(s) for s in blob["shape"])
        nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        if nbytes > MAX_FRAME_BYTES:
            raise WireError(f"blob {blob['name']!r} of {nbytes} bytes "
                            "exceeds the wire limit")
        raw = _read_exact(sock, nbytes)
        if zlib.crc32(raw) != int(blob["crc"]):
            raise ChecksumError(
                f"blob {blob['name']!r} failed its CRC-32 check")
        arrays[blob["name"]] = (
            np.frombuffer(raw, dtype=dtype).reshape(shape).copy())
        total += nbytes
    return Frame(type=str(header.get("type", "")),
                 payload=header.get("payload", {}) or {}, arrays=arrays,
                 nbytes=total)
