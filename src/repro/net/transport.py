"""Socket transport with retry/backoff connects and deadline-bounded reads.

The policy layer between raw frames (:mod:`repro.net.wire`) and the
server/silo state machines: exponential backoff with jitter for
connection establishment, per-receive deadlines that surface as
:class:`DeadlineExceeded` (the server turns those into round dropouts),
and a drain loop that discards stale frames -- a late PONG or a
duplicated UPDATE from an earlier round must not be mistaken for the
reply to the current request.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass

from repro.net import wire
from repro.obs.metrics import get_registry


class TransportError(ConnectionError):
    """Could not reach, or lost, a peer (after any configured retries)."""


class DeadlineExceeded(TransportError):
    """The peer did not produce the expected frame within the deadline."""


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter: delay ``i`` is
    ``min(base * 2**i, max) * (1 + jitter * U[0,1))``."""

    retries: int = 8
    base_delay: float = 0.1
    max_delay: float = 2.0
    jitter: float = 0.5

    def delays(self, rng: random.Random):
        """Yield the sleep before each retry (``retries`` values)."""
        for attempt in range(self.retries):
            yield (min(self.base_delay * 2.0**attempt, self.max_delay)
                   * (1.0 + self.jitter * rng.random()))


def connect_with_retry(host: str, port: int, policy: RetryPolicy,
                       rng: random.Random,
                       timeout: float = 10.0) -> socket.socket:
    """Dial ``host:port``, retrying per ``policy``; the first attempt is
    immediate.  Raises :class:`TransportError` once retries are spent."""
    delays = policy.delays(rng)
    attempt = 0
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            sock.settimeout(None)
            return sock
        except OSError as exc:
            attempt += 1
            try:
                delay = next(delays)
            except StopIteration:
                raise TransportError(
                    f"could not connect to {host}:{port} after "
                    f"{attempt} attempt(s): {exc}") from exc
            time.sleep(delay)


class MessageSocket:
    """A connected socket speaking whole frames, with deadline receives.

    Every instance keeps its own :attr:`bytes_sent` / :attr:`bytes_received`
    ledger (exact on-the-wire byte counts), and each send/recv feeds the
    process metrics registry -- frame latency histograms and byte-total
    counters labelled by frame type.
    """

    # Ceiling on stale frames discarded per recv_matching call -- a peer
    # spamming mismatched frames fails loudly instead of looping forever.
    MAX_STALE_FRAMES = 16

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.bytes_sent = 0
        self.bytes_received = 0
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # not fatal; some socketpairs lack TCP options

    def send(self, msg_type: str, payload: dict | None = None,
             arrays: dict | None = None) -> None:
        data = wire.pack_frame(msg_type, payload, arrays)
        start = time.perf_counter()
        try:
            self.sock.sendall(data)
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from exc
        self.bytes_sent += len(data)
        reg = get_registry()
        reg.histogram(
            "net_frame_send_seconds",
            help="Wall-clock seconds spent in sendall per frame.",
            unit="seconds",
        ).labels(type=msg_type).observe(time.perf_counter() - start)
        reg.counter(
            "net_bytes_sent_total", help="Frame bytes written to sockets.",
            unit="bytes",
        ).labels(type=msg_type).inc(len(data))

    def send_raw(self, data: bytes) -> None:
        """Write pre-packed (possibly deliberately corrupted) bytes --
        the hook :mod:`repro.net.faults` uses for the corrupt action."""
        try:
            self.sock.sendall(data)
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from exc
        self.bytes_sent += len(data)

    def recv(self, timeout: float | None = None) -> wire.Frame:
        """Read one frame, raising :class:`DeadlineExceeded` on timeout.

        The recv latency histogram includes the wait for the peer to
        produce the frame, not just the read itself.
        """
        self.sock.settimeout(timeout)
        start = time.perf_counter()
        try:
            frame = wire.recv_frame(self.sock)
        except socket.timeout as exc:
            raise DeadlineExceeded(
                f"no frame within {timeout:.3f}s") from exc
        except OSError as exc:
            raise TransportError(f"recv failed: {exc}") from exc
        finally:
            try:
                self.sock.settimeout(None)
            except OSError:
                pass
        self.bytes_received += frame.nbytes
        reg = get_registry()
        reg.histogram(
            "net_frame_recv_seconds",
            help="Seconds from recv call to a whole frame (includes the "
                 "wait for the peer).",
            unit="seconds",
        ).labels(type=frame.type).observe(time.perf_counter() - start)
        reg.counter(
            "net_bytes_received_total", help="Frame bytes read from sockets.",
            unit="bytes",
        ).labels(type=frame.type).inc(frame.nbytes)
        return frame

    def recv_matching(self, reply_type: str, round_no: int,
                      timeout: float) -> wire.Frame:
        """Read frames until one matches ``(reply_type, round_no)``.

        Stale frames -- late PONGs from an earlier ping phase, duplicate
        UPDATEs injected by a fault plan -- are discarded.  The deadline
        covers the whole drain, not each read.
        """
        deadline = time.monotonic() + timeout
        for _ in range(self.MAX_STALE_FRAMES):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlineExceeded(
                    f"no {reply_type!r} frame for round {round_no} "
                    f"within {timeout:.3f}s")
            frame = self.recv(timeout=remaining)
            if (frame.type == reply_type
                    and frame.payload.get("round") == round_no):
                return frame
        raise TransportError(
            f"discarded {self.MAX_STALE_FRAMES} stale frames waiting for "
            f"{reply_type!r} (round {round_no}); peer is misbehaving")

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass
