"""The silo worker process (``repro silo``).

A :class:`SiloClient` is *stateless between rounds*: it rebuilds the full
simulator from the spec at startup (synthetic datasets are deterministic
in the seed, so its federation, prepared method, and model are identical
to the server's), connects with retry/backoff, and then simply answers
frames:

- ``ping``  -> ``pong`` with a readiness flag (the fault plan's
  ``decline``/``drop_rate`` land here);
- ``compute`` -> restore the server-sent RNG state, run
  :meth:`silo_round_segment
  <repro.core.methods.uldp_avg.UldpAvg.silo_round_segment>`, and reply
  with the clipped per-user rows, the noise vector, and the *advanced*
  RNG state (the server chains it into the next silo's compute);
- ``done`` / ``abort`` -> exit.

Because every round's inputs arrive in the COMPUTE frame, a silo killed
and restarted mid-run needs no recovery protocol: it reconnects, passes
the spec-hash handshake, and serves the next round.  Fault-plan actions
(:mod:`repro.net.faults`) are applied to the client's *own* replies, so
chaos tests exercise the production server code unmodified.
"""

from __future__ import annotations

import logging
import os
import random
import time

from repro.api.runner import build_simulator
from repro.api.spec import RunSpec, SpecError
from repro.net.faults import FaultPlan
from repro.net.transport import (
    DeadlineExceeded,
    MessageSocket,
    RetryPolicy,
    TransportError,
    connect_with_retry,
)
from repro.net.wire import WIRE_VERSION, WireError, pack_frame

log = logging.getLogger(__name__)


class SiloClient:
    """One silo process serving rounds for a simulate-mode [net] spec."""

    def __init__(self, spec: RunSpec, silo_id: int, port: int | None = None):
        if spec.net is None:
            raise SpecError("spec has no [net] section; nothing to join")
        if not spec.is_simulation:
            raise SpecError("repro silo needs a [sim] scenario spec")
        self.spec = spec
        self.net = spec.net
        self.port = int(port) if port is not None else spec.net.port
        if self.port == 0:
            raise SpecError(
                "the spec leaves the port OS-assigned; pass --port with "
                "the port `repro serve` printed")
        self.sim = build_simulator(spec)
        if not 0 <= silo_id < self.sim.fed.n_silos:
            raise SpecError(
                f"silo id {silo_id} out of range for the scenario's "
                f"{self.sim.fed.n_silos} silos")
        if not hasattr(self.sim.method, "silo_round_segment"):
            raise SpecError(
                "repro silo supports the ULDP-AVG method family "
                "(methods with a silo_round_segment API)")
        self.silo_id = int(silo_id)
        self.plan = FaultPlan.from_tree(spec.net.faults)
        self.spec_hash = spec.hash()

    # -- fault application ---------------------------------------------------

    def _actions(self, round_no: int) -> dict[str, float]:
        """action -> value for the scripted faults hitting this round."""
        return {e.action: e.value
                for e in self.plan.events_for(self.silo_id, round_no)}

    def _send_reply(self, conn: MessageSocket, actions: dict, msg_type: str,
                    payload: dict, arrays: dict | None = None) -> None:
        """Send one reply with the timing/integrity faults applied."""
        if "timeout" in actions:
            # Default: sleep well past the server's compute deadline so it
            # observes a genuine unresponsive silo, not a slow one.
            time.sleep(actions["timeout"] or 3.0 * self.net.round_timeout)
        elif "delay" in actions:
            time.sleep(actions["delay"])
        data = pack_frame(msg_type, payload, arrays)
        if "corrupt" in actions:
            data = data[:-1] + bytes([data[-1] ^ 0xFF])
        conn.send_raw(data)
        if "duplicate" in actions:
            conn.send_raw(data)

    # -- frame handlers ------------------------------------------------------

    def _handle_ping(self, conn: MessageSocket, frame) -> str:
        t = int(frame.payload.get("round", -1))
        actions = self._actions(t)
        if "crash" in actions:
            os._exit(17)  # simulate kill -9: no cleanup, no goodbye
        if "partition" in actions:
            conn.close()
            time.sleep(actions["partition"] or 1.0)
            return "reconnect"
        ready = not ("decline" in actions or self.plan.drops(self.silo_id, t))
        self._send_reply(conn, actions, "pong", {"round": t, "ready": ready})
        return "ok"

    def _handle_compute(self, conn: MessageSocket, frame) -> str:
        t = int(frame.payload.get("round", -1))
        actions = self._actions(t)
        if "crash" in actions:
            os._exit(17)
        if "partition" in actions:
            conn.close()
            time.sleep(actions["partition"] or 1.0)
            return "reconnect"
        method = self.sim.method
        rng = method.rng
        rng.bit_generator.state = frame.payload["rng_state"]
        users, rows, noise = method.silo_round_segment(
            self.silo_id,
            frame.arrays["params"],
            frame.arrays["weights"],
            float(frame.payload["noise_std"]),
        )
        self._send_reply(
            conn, actions, "update",
            {"round": t, "users": users,
             "rng_state": rng.bit_generator.state},
            arrays={"rows": rows, "noise": noise},
        )
        return "ok"

    # -- the serve loop ------------------------------------------------------

    def _serve(self, conn: MessageSocket) -> str:
        """Answer frames until done/abort; returns the session outcome."""
        while True:
            try:
                frame = conn.recv(timeout=self.net.idle_timeout)
            except (DeadlineExceeded, TransportError, WireError):
                return "reconnect"
            if frame.type in ("ping", "compute"):
                handler = (self._handle_ping if frame.type == "ping"
                           else self._handle_compute)
                try:
                    outcome = handler(conn, frame)
                except TransportError:
                    # The server dropped us (e.g. after our own injected
                    # timeout); reconnect and serve the next round.
                    return "reconnect"
            elif frame.type == "done":
                return "done"
            elif frame.type == "abort":
                log.error("silo %d: server aborted: %s", self.silo_id,
                          frame.payload.get("reason", ""))
                return "abort"
            else:
                continue  # unknown frame type: ignore (forward compat)
            if outcome != "ok":
                return outcome

    def run(self) -> int:
        """Connect (with retry/backoff), serve rounds, return an exit code:
        0 done, 1 aborted, 2 refused, 3 could not (re)connect."""
        backoff_rng = random.Random(
            f"uldp-fl:{self.spec.seed}:silo-backoff:{self.silo_id}")
        policy = RetryPolicy(
            retries=self.net.connect_retries,
            base_delay=self.net.backoff_base,
            max_delay=self.net.backoff_max,
            jitter=self.net.backoff_jitter,
        )
        failures = 0
        while True:
            try:
                sock = connect_with_retry(
                    self.net.host, self.port, policy, backoff_rng,
                    timeout=self.net.join_timeout)
            except TransportError as exc:
                log.error("silo %d: %s", self.silo_id, exc)
                return 3
            conn = MessageSocket(sock)
            try:
                conn.send("hello", {"silo": self.silo_id,
                                    "spec_hash": self.spec_hash,
                                    "wire": WIRE_VERSION})
                frame = conn.recv(timeout=self.net.join_timeout)
            except (TransportError, WireError):
                conn.close()
                failures += 1
                if failures > self.net.connect_retries:
                    log.error("silo %d: gave up after %d failed sessions",
                              self.silo_id, failures)
                    return 3
                continue
            if frame.type == "refuse":
                log.error("silo %d: refused: %s", self.silo_id,
                          frame.payload.get("reason", ""))
                conn.close()
                return 2
            if frame.type != "welcome":
                conn.close()
                failures += 1
                continue
            failures = 0
            outcome = self._serve(conn)
            conn.close()
            if outcome == "done":
                return 0
            if outcome == "abort":
                return 1
            failures += 1
            if failures > self.net.connect_retries:
                log.error("silo %d: gave up after %d failed sessions",
                          self.silo_id, failures)
                return 3
