"""Deterministic seeded fault injection for the networked runtime.

A :class:`FaultPlan` tells a *silo process* how to misbehave, per round --
the chaos-test harness for :mod:`repro.net`.  Faults are injected on the
silo side (the process sabotages its own replies), so the server code
under test is exactly the production code.  Two sources compose:

- **events**: explicit ``(silo, action, round window)`` entries -- fully
  scripted, e.g. "silo 2 times out in round 1".
- **drop_rate**: a seeded Bernoulli per ``(silo, round)`` that makes the
  silo decline the round.  The draw is a pure hash of
  ``(seed, silo, round)`` -- no RNG object, no state -- so a killed and
  restarted silo process reproduces the identical fault schedule, which
  is what keeps chaos runs resumable.

Actions (the silo's behaviour for rounds in ``[start, stop)``):

- ``"decline"`` -- answer the liveness ping with ``ready = false``: a
  deterministic, connection-preserving dropout (the exact-oracle fault).
- ``"timeout"`` -- sleep ``value`` seconds (default: past the server's
  deadline) before replying: the server observes a real deadline miss.
- ``"delay"`` -- sleep ``value`` seconds before replying (a straggler;
  below-deadline values cause latency, not dropout).
- ``"duplicate"`` -- send the reply twice (the server must drain stales).
- ``"corrupt"`` -- flip a payload byte so the frame fails its checksum.
- ``"crash"`` -- ``os._exit`` the silo process the moment a frame for an
  affected round arrives (the ``kill -9`` chaos case).
- ``"partition"`` -- drop the connection without replying and stay
  unreachable for ``value`` seconds before reconnecting.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

ACTIONS = (
    "decline",
    "timeout",
    "delay",
    "duplicate",
    "corrupt",
    "crash",
    "partition",
)

_EVENT_KEYS = {"silo", "action", "round", "start", "stop", "value"}
_TREE_KEYS = {"events", "drop_rate", "seed"}


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault: ``silo`` performs ``action`` for rounds in
    ``[start, stop)``; ``value`` is the action's parameter (seconds for
    the timing actions, unused otherwise)."""

    silo: int
    action: str
    start: int
    stop: int
    value: float = 0.0

    def __post_init__(self):
        if self.silo < 0:
            raise ValueError("silo must be non-negative")
        if self.action not in ACTIONS:
            raise ValueError(
                f"action must be one of {ACTIONS}, got {self.action!r}"
            )
        if self.start < 0 or self.stop <= self.start:
            raise ValueError("need 0 <= start < stop (a half-open round window)")
        if self.value < 0:
            raise ValueError("value must be non-negative")

    def to_tree(self) -> dict:
        """Plain-dict form (the spec-file encoding)."""
        tree: dict = {
            "silo": self.silo,
            "action": self.action,
            "start": self.start,
            "stop": self.stop,
        }
        if self.value:
            tree["value"] = self.value
        return tree


class FaultPlan:
    """A deterministic per-(silo, round) fault schedule (see module doc)."""

    def __init__(
        self,
        events: tuple[FaultEvent, ...] | list[FaultEvent] = (),
        drop_rate: float = 0.0,
        seed: int = 0,
    ):
        if not 0 <= drop_rate < 1:
            raise ValueError("drop_rate must lie in [0, 1)")
        self.events = tuple(events)
        self.drop_rate = float(drop_rate)
        self.seed = int(seed)

    @classmethod
    def from_tree(cls, tree: dict | None) -> "FaultPlan":
        """Build a plan from its spec-file dict form (``{}`` = ideal).

        Event entries accept either ``round = t`` (a single round) or a
        ``start``/``stop`` half-open window.  Unknown keys are errors.
        """
        if not tree:
            return cls()
        if not isinstance(tree, dict):
            raise ValueError("fault plan must be a table")
        unknown = sorted(set(tree) - _TREE_KEYS)
        if unknown:
            raise ValueError(
                f"unknown fault-plan key {unknown[0]!r} "
                f"(valid: {', '.join(sorted(_TREE_KEYS))})"
            )
        events = []
        raw_events = tree.get("events", [])
        if not isinstance(raw_events, (list, tuple)):
            raise ValueError("events must be a list of fault tables")
        for i, entry in enumerate(raw_events):
            if not isinstance(entry, dict):
                raise ValueError(f"events[{i}]: must be a table")
            bad = sorted(set(entry) - _EVENT_KEYS)
            if bad:
                raise ValueError(
                    f"events[{i}]: unknown key {bad[0]!r} "
                    f"(valid: {', '.join(sorted(_EVENT_KEYS))})"
                )
            if "round" in entry and ("start" in entry or "stop" in entry):
                raise ValueError(
                    f"events[{i}]: give either round or a start/stop window"
                )
            if "round" in entry:
                start, stop = int(entry["round"]), int(entry["round"]) + 1
            elif "start" in entry and "stop" in entry:
                start, stop = int(entry["start"]), int(entry["stop"])
            else:
                raise ValueError(
                    f"events[{i}]: needs round or a start/stop window"
                )
            try:
                events.append(
                    FaultEvent(
                        silo=int(entry.get("silo", -1)),
                        action=str(entry.get("action", "")),
                        start=start,
                        stop=stop,
                        value=float(entry.get("value", 0.0)),
                    )
                )
            except ValueError as exc:
                raise ValueError(f"events[{i}]: {exc}") from exc
        return cls(
            events=events,
            drop_rate=float(tree.get("drop_rate", 0.0)),
            seed=int(tree.get("seed", 0)),
        )

    def to_tree(self) -> dict:
        """Inverse of :meth:`from_tree` (``{}`` for the ideal plan)."""
        tree: dict = {}
        if self.events:
            tree["events"] = [e.to_tree() for e in self.events]
        if self.drop_rate:
            tree["drop_rate"] = self.drop_rate
        if self.seed:
            tree["seed"] = self.seed
        return tree

    @property
    def is_ideal(self) -> bool:
        """Whether this plan never injects anything."""
        return not self.events and self.drop_rate == 0.0

    def events_for(self, silo: int, round_no: int) -> list[FaultEvent]:
        """The scripted faults hitting ``silo`` in ``round_no``."""
        return [
            e
            for e in self.events
            if e.silo == silo and e.start <= round_no < e.stop
        ]

    def drops(self, silo: int, round_no: int) -> bool:
        """Seeded Bernoulli(``drop_rate``) draw for ``(silo, round)``.

        A pure function of ``(seed, silo, round)`` -- restarting the silo
        process replays the identical schedule.
        """
        if self.drop_rate <= 0.0:
            return False
        digest = hashlib.sha256(
            f"uldp-fl-fault:{self.seed}:{silo}:{round_no}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64 < self.drop_rate
