"""The round-orchestrating federation server (``repro serve``).

:class:`FederationServer` owns the same
:class:`repro.sim.FederationSimulator` the in-process runtime drives, but
farms each silo's per-round training out to real silo processes
(:mod:`repro.net.silo_client`) over the :mod:`repro.net.wire` protocol.

Design invariants:

- **Bit-identity with the in-process simulator.**  The server installs a
  per-round :attr:`contribution_executor
  <repro.core.methods.uldp_avg.UldpAvg.contribution_executor>` that walks
  the silos in index order, sending each active silo the current params,
  its realised weight row, the round's noise std, and the server RNG's
  bit-generator state; the silo restores that state, runs
  :meth:`silo_round_segment
  <repro.core.methods.uldp_avg.UldpAvg.silo_round_segment>` (the exact
  per-silo computation the in-process engines run), and returns the
  advanced RNG state with its rows.  Chaining the RNG through the silos
  in order reproduces the in-process draw sequence exactly, so an
  ideal-network run matches :class:`repro.sim.FederationSimulator`
  aggregate-for-aggregate and epsilon-for-epsilon.
- **Timeout-driven dropout.**  A silo that misses the liveness ping or
  its compute deadline becomes an *observed* dropout for the round
  (:attr:`FederationSimulator.external_dropout`): the masked secure
  backend recovers exactly as it does for simulated dropout, and the
  round is retried from a state snapshot without the failed silo.  When
  live silos fall below ``net.min_quorum`` the server broadcasts an
  abort and raises :class:`repro.core.weighting.QuorumError`.
- **Crash-safe resume.**  With ``sim.checkpoint_dir`` set the server
  snapshots on the same cadence as the in-process runtime; ``repro serve
  --resume`` rebuilds the simulator from the (spec-verified) checkpoint
  and silos simply reconnect -- they are stateless between rounds.

See ``docs/networking.md`` for the full walkthrough.
"""

from __future__ import annotations

import logging
import socket
import time

import numpy as np

from repro.api.runner import build_simulator, checkpoint_extra, obs_session
from repro.api.spec import RunSpec, SpecError
from repro.core.methods.uldp_avg import _RoundContributions
from repro.core.weighting import QuorumError
from repro.net.transport import (
    DeadlineExceeded,
    MessageSocket,
    TransportError,
)
from repro.net.wire import WIRE_VERSION, WireError
from repro.obs.metrics import get_registry
from repro.obs.trace import get_recorder

log = logging.getLogger(__name__)


class SiloFailure(Exception):
    """A silo failed mid-round (deadline, transport, or bad reply)."""

    def __init__(self, silo: int, reason: str):
        super().__init__(f"silo {silo}: {reason}")
        self.silo = silo
        self.reason = reason


class _RemoteExecutor:
    """One round's contribution executor: serial COMPUTE walk over silos.

    The walk is deliberately serial -- silo s+1's RNG state is only known
    once silo s's reply arrives, which is the price of bit-identity with
    the in-process simulator (and what makes thread-based tests safe:
    server and silos never run the pooled training engine concurrently).
    """

    def __init__(self, server: "FederationServer", round_no: int):
        self.server = server
        self.round_no = round_no

    def __call__(self, params, round_weights, noise_std, active_mask):
        server = self.server
        sim = server.sim
        method = sim.method
        rng = method.rng
        n_silos = sim.fed.n_silos
        size = params.size
        dicts: list[dict[int, np.ndarray]] = []
        pairs: list[tuple[int, int]] = []
        blocks: list[np.ndarray] = []
        noises: list[np.ndarray] = []
        recorder = get_recorder()
        with recorder.span(
            "collect_contributions", kind="phase", round=self.round_no + 1
        ):
            for s in range(n_silos):
                if active_mask is not None and not active_mask[s]:
                    dicts.append({})
                    continue
                conn = server.conns.get(s)
                if conn is None:
                    raise SiloFailure(s, "connection lost before compute")
                state = rng.bit_generator.state
                with recorder.span(
                    "silo_compute", kind="silo", silo=s,
                    round=self.round_no + 1,
                ) as span:
                    sent0, recv0 = conn.bytes_sent, conn.bytes_received
                    start = time.perf_counter()
                    try:
                        conn.send(
                            "compute",
                            {"round": self.round_no,
                             "noise_std": float(noise_std),
                             "rng_state": state},
                            arrays={"params": params,
                                    "weights": np.ascontiguousarray(
                                        round_weights[s])},
                        )
                        frame = conn.recv_matching(
                            "update", self.round_no, server.net.round_timeout)
                    except DeadlineExceeded as exc:
                        raise SiloFailure(
                            s, f"missed the {server.net.round_timeout:.1f}s "
                            f"compute deadline ({exc})") from exc
                    except (TransportError, WireError) as exc:
                        raise SiloFailure(
                            s, f"transport failure: {exc}") from exc
                    # Margin left on the compute deadline: how close this
                    # silo came to being dropped for the round.
                    margin = (server.net.round_timeout
                              - (time.perf_counter() - start))
                    span.set(
                        deadline_margin=margin,
                        downlink_bytes=conn.bytes_sent - sent0,
                        uplink_bytes=conn.bytes_received - recv0,
                    )
                    get_registry().histogram(
                        "net_deadline_margin_seconds",
                        help="Seconds left on the compute deadline when "
                             "each silo's update arrived.",
                        unit="seconds",
                    ).labels(silo=s).observe(margin)
                    users = frame.payload.get("users")
                    rows = frame.arrays.get("rows")
                    noise = frame.arrays.get("noise")
                    if (not isinstance(users, list) or rows is None
                            or noise is None
                            or rows.shape != (len(users), size)
                            or noise.shape != (size,)):
                        raise SiloFailure(s, "malformed update frame")
                    try:
                        rng.bit_generator.state = frame.payload["rng_state"]
                    except (KeyError, TypeError, ValueError) as exc:
                        raise SiloFailure(
                            s, f"bad rng state in update: {exc}") from exc
                users = [int(u) for u in users]
                rows = np.ascontiguousarray(rows, dtype=np.float64)
                dicts.append({u: rows[i] for i, u in enumerate(users)})
                pairs.extend((s, u) for u in users)
                blocks.append(rows)
                noises.append(np.ascontiguousarray(noise, dtype=np.float64))
        if method.engine != "vectorized":
            # The loop engine's _aggregate fallback sums silo-by-silo; hand
            # it plain dicts so the summation order (and hence the floats)
            # match the in-process loop path exactly.
            return dicts, noises
        matrix = (np.concatenate(blocks, axis=0) if blocks
                  else np.zeros((0, size)))
        return _RoundContributions(dicts, matrix, pairs), noises


class FederationServer:
    """Drives one simulate-mode spec over real silo connections."""

    def __init__(self, spec: RunSpec, sim=None):
        if spec.net is None:
            raise SpecError("spec has no [net] section; nothing to serve")
        if not spec.is_simulation:
            raise SpecError("repro serve needs a [sim] scenario spec")
        self.spec = spec
        self.net = spec.net
        self.sim = sim if sim is not None else build_simulator(spec)
        method = self.sim.method
        if not hasattr(method, "silo_round_segment"):
            raise SpecError(
                "repro serve supports the ULDP-AVG method family "
                f"(methods with a silo_round_segment API); "
                f"{type(method).__name__} has none")
        from repro.sim.policies import BufferedAsyncPolicy

        if isinstance(self.sim.config.policy, BufferedAsyncPolicy):
            raise SpecError(
                "the networked runtime drives synchronous / semi-"
                "synchronous rounds; buffered-async scenarios are "
                "in-process only")
        if self.net.min_quorum > self.sim.fed.n_silos:
            raise SpecError(
                f"net.min_quorum={self.net.min_quorum} exceeds the "
                f"scenario's {self.sim.fed.n_silos} silos")
        self.spec_hash = spec.hash()
        # Stamp the history like repro.run does (idempotent on resume).
        self.sim.history.spec = spec.to_dict()
        self.sim.history.spec_hash = self.spec_hash
        self.listener: socket.socket | None = None
        self.port: int | None = None
        self.conns: dict[int, MessageSocket] = {}
        #: Wire bytes spent on round attempts that were aborted and
        #: retried after a :class:`SiloFailure`.  ``TrainingHistory.comm``
        #: is rolled back with the snapshot, so aborted-attempt traffic
        #: lands here (and only here) -- never double-counted in the
        #: per-round comm ledger.  Uplink is silo->server (server
        #: receives), downlink server->silo.
        self.retry_ledger: dict[str, int] = {
            "attempts": 0, "uplink_bytes": 0, "downlink_bytes": 0,
        }

    # -- connection management -----------------------------------------------

    def bind(self) -> int:
        """Listen on ``net.host:net.port``; returns the bound port
        (OS-assigned when the spec says port 0)."""
        if self.listener is None:
            self.listener = socket.create_server(
                (self.net.host, self.net.port))
            self.port = self.listener.getsockname()[1]
        return self.port

    def close(self) -> None:
        for conn in self.conns.values():
            conn.close()
        self.conns.clear()
        if self.listener is not None:
            try:
                self.listener.close()
            except OSError:
                pass
            self.listener = None

    def _handshake(self, raw_sock: socket.socket) -> int | None:
        """HELLO/WELCOME on a fresh connection; returns the silo id."""
        conn = MessageSocket(raw_sock)
        try:
            frame = conn.recv(timeout=self.net.ping_timeout)
        except (TransportError, WireError):
            conn.close()
            return None
        reason = None
        silo = frame.payload.get("silo")
        if frame.type != "hello":
            reason = f"expected a hello frame, got {frame.type!r}"
        elif not isinstance(silo, int) or not 0 <= silo < self.sim.fed.n_silos:
            reason = (f"unknown silo id {silo!r} "
                      f"(roster has {self.sim.fed.n_silos} silos)")
        elif frame.payload.get("wire") != WIRE_VERSION:
            reason = (f"wire version {frame.payload.get('wire')!r} != "
                      f"{WIRE_VERSION}")
        elif frame.payload.get("spec_hash") != self.spec_hash:
            reason = ("spec hash mismatch: the silo was built from a "
                      "different configuration than this server")
        if reason is not None:
            log.warning("refused a connection (silo=%s): %s", silo, reason)
            get_registry().counter(
                "net_handshakes_refused_total",
                help="Connections refused at the HELLO/WELCOME handshake.",
            ).inc()
            try:
                conn.send("refuse", {"reason": reason})
            except TransportError:
                pass
            conn.close()
            return None
        old = self.conns.pop(silo, None)
        if old is not None:
            old.close()
        try:
            conn.send("welcome", {
                "round": self.sim.rounds_completed,
                "rounds": self.sim.config.rounds,
                "n_silos": self.sim.fed.n_silos,
            })
        except TransportError:
            conn.close()
            return None
        self.conns[silo] = conn
        log.info("silo %d joined (round %d, %d/%d connected)",
                 silo, self.sim.rounds_completed, len(self.conns),
                 self.sim.fed.n_silos)
        return silo

    def _await_roster(self) -> None:
        """Wait (up to ``join_timeout``) for the full roster to connect."""
        assert self.listener is not None
        deadline = time.monotonic() + self.net.join_timeout
        while len(self.conns) < self.sim.fed.n_silos:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            self.listener.settimeout(remaining)
            try:
                raw, _ = self.listener.accept()
            except socket.timeout:
                break
            except OSError:
                break
            self._handshake(raw)
        if len(self.conns) < self.net.min_quorum:
            raise TransportError(
                f"only {len(self.conns)} of {self.sim.fed.n_silos} silo(s) "
                f"joined within {self.net.join_timeout:.1f}s, below "
                f"net.min_quorum={self.net.min_quorum}")

    def _drain_rejoins(self) -> None:
        """Accept any pending (re)connections without blocking."""
        assert self.listener is not None
        self.listener.settimeout(0)
        while True:
            try:
                raw, _ = self.listener.accept()
            except (BlockingIOError, socket.timeout, OSError):
                break
            self._handshake(raw)

    def _drop(self, silo: int) -> None:
        conn = self.conns.pop(silo, None)
        if conn is not None:
            conn.close()

    def _broadcast(self, msg_type: str, payload: dict) -> None:
        for s in list(self.conns):
            try:
                self.conns[s].send(msg_type, payload)
            except TransportError:
                self._drop(s)

    # -- the round loop ------------------------------------------------------

    def _ping_phase(self, round_no: int) -> np.ndarray:
        """Liveness sweep: who answers the ping (and says ready) in time.

        A deadline miss keeps the connection (the late PONG is drained as
        a stale frame later); a transport/wire error drops it -- the silo
        reconnects through the listener when it recovers.
        """
        alive = np.zeros(self.sim.fed.n_silos, dtype=bool)
        with get_recorder().span("ping", kind="phase", round=round_no + 1):
            for s in list(self.conns):
                try:
                    self.conns[s].send("ping", {"round": round_no})
                except TransportError:
                    log.warning("round %d: silo %d unreachable at ping; "
                                "dropping the connection", round_no, s)
                    self._drop(s)
            for s in list(self.conns):
                try:
                    frame = self.conns[s].recv_matching(
                        "pong", round_no, self.net.ping_timeout)
                except DeadlineExceeded:
                    log.warning("round %d: silo %d missed the %.1fs ping "
                                "deadline", round_no, s,
                                self.net.ping_timeout)
                    continue
                except (TransportError, WireError):
                    log.warning("round %d: silo %d lost at ping; dropping "
                                "the connection", round_no, s)
                    self._drop(s)
                    continue
                alive[s] = bool(frame.payload.get("ready", True))
        return alive

    def serve(self):
        """Run the remaining rounds; returns the TrainingHistory.

        Raises :class:`repro.core.weighting.QuorumError` when live silos
        fall below ``net.min_quorum`` (after broadcasting an abort), and
        propagates :class:`QuorumError` from the masked backend's
        ``min_survivors`` check the same way.
        """
        with obs_session(self.spec, mode="serve"):
            return self._serve_rounds()

    def _attempt_byte_marks(self) -> dict[int, tuple[int, int]]:
        """Per-connection (sent, received) byte counters, pre-attempt."""
        return {s: (c.bytes_sent, c.bytes_received)
                for s, c in self.conns.items()}

    def _charge_retry_ledger(self, marks: dict[int, tuple[int, int]]) -> None:
        """Attribute an aborted attempt's wire traffic to the retry ledger.

        The simulator's comm ledger is about to be rolled back with the
        snapshot, so these bytes would otherwise vanish from every
        record; here they stay visible without double-counting.
        """
        self.retry_ledger["attempts"] += 1
        for s, (sent0, recv0) in marks.items():
            conn = self.conns.get(s)
            if conn is None:
                continue
            self.retry_ledger["downlink_bytes"] += conn.bytes_sent - sent0
            self.retry_ledger["uplink_bytes"] += conn.bytes_received - recv0

    def _serve_rounds(self):
        self.bind()
        sim = self.sim
        method = sim.method
        sim_spec = self.spec.sim
        recorder = get_recorder()
        reg = get_registry()
        every = sim_spec.checkpoint_every or max(1, sim.config.rounds // 4)
        log.info("serving %d silo(s), rounds %d..%d on port %s",
                 sim.fed.n_silos, sim.rounds_completed, sim.config.rounds,
                 self.port)
        try:
            self._await_roster()
            while not sim.done:
                t = sim.rounds_completed
                self._drain_rejoins()
                alive = self._ping_phase(t)
                while True:
                    live = int(alive.sum())
                    if live < self.net.min_quorum:
                        reason = (
                            f"round {t}: {live} silo(s) alive, below "
                            f"net.min_quorum={self.net.min_quorum}; "
                            "aborting the run")
                        log.error("%s", reason)
                        recorder.event("quorum_abort", round=t + 1,
                                       live=live,
                                       min_quorum=self.net.min_quorum)
                        self._broadcast("abort",
                                        {"round": t, "reason": reason})
                        raise QuorumError(reason)
                    snapshot = sim.state_dict()
                    marks = self._attempt_byte_marks()
                    method.contribution_executor = _RemoteExecutor(self, t)
                    sim.external_dropout = alive.copy()
                    try:
                        sim.step()
                        break
                    except SiloFailure as failure:
                        # Timeout/transport/bad-reply mid-round: the silo
                        # becomes an observed dropout, the round restarts
                        # from the snapshot without it.
                        log.warning("round %d: %s; retrying the round "
                                    "without silo %d", t, failure,
                                    failure.silo)
                        recorder.event("silo_fault", round=t + 1,
                                       silo=failure.silo,
                                       reason=failure.reason)
                        reg.counter(
                            "net_silo_faults_total",
                            help="Mid-round silo failures observed by the "
                                 "server.",
                        ).inc()
                        self._charge_retry_ledger(marks)
                        reg.counter(
                            "net_round_retries_total",
                            help="Round attempts aborted and retried from "
                                 "a snapshot.",
                        ).inc()
                        alive[failure.silo] = False
                        self._drop(failure.silo)
                        sim.load_state(snapshot)
                    finally:
                        method.contribution_executor = None
                        sim.external_dropout = None
                if sim_spec.checkpoint_dir and (
                        sim.rounds_completed % every == 0 or sim.done):
                    from repro.sim.checkpoint import save_checkpoint

                    with recorder.span("checkpoint", kind="phase",
                                       round=sim.rounds_completed):
                        save_checkpoint(sim_spec.checkpoint_dir, sim,
                                        extra=checkpoint_extra(self.spec))
            log.info("run complete after round %d", sim.rounds_completed)
            self._broadcast("done", {"round": sim.rounds_completed})
            return sim.history
        finally:
            self.close()
