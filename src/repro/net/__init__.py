"""Networked federation runtime: server/silo processes over TCP sockets.

The package realises ``repro serve`` / ``repro silo``: the round loop of a
:class:`repro.sim.FederationSimulator` stays on the server, but each
silo's per-user training runs in a separate OS process reached over a
length-prefixed binary wire protocol.  An ideal network reproduces the
in-process simulator bit for bit; a silo that misses its deadline becomes
a real :class:`repro.core.weighting.RoundParticipation` dropout.  See
``docs/networking.md`` for the wire format, timeout semantics, fault
plans, and the crash/resume walkthrough.

Submodules (imported lazily -- the server pulls in the full API stack):

- :mod:`repro.net.wire` -- framed JSON-header + raw-ndarray messages.
- :mod:`repro.net.transport` -- retry/backoff connects, deadline recv.
- :mod:`repro.net.faults` -- deterministic fault-injection plans.
- :mod:`repro.net.server` -- the round-orchestrating federation server.
- :mod:`repro.net.silo_client` -- the stateless silo worker process.
"""

from __future__ import annotations

_LAZY = {
    "FederationServer": "repro.net.server",
    "SiloFailure": "repro.net.server",
    "SiloClient": "repro.net.silo_client",
    "FaultPlan": "repro.net.faults",
    "FaultEvent": "repro.net.faults",
}

__all__ = sorted(_LAZY)


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
