"""Command-line interface: ``python -m repro <subcommand>``.

The declarative surface (one validated config tree, see ``docs/api.md``):

- ``run``       -- execute one :class:`repro.api.RunSpec` from a TOML/JSON
                   config file, with dotted-path ``--set`` overrides.
- ``sweep``     -- expand a spec's ``[sweep]`` grid axes into child runs
                   (optionally across a process pool) and print one
                   aggregated comparison table.
- ``validate-config`` -- parse + validate spec files (registry names,
                   enum/range checks, sweep expansion) without running.
- ``cost``      -- predict a spec's per-phase wall-clock / wire bytes /
                   ciphertext counts / memory from the symbolic cost
                   model (``docs/cost_model.md``), or invert it
                   (``--solve-for users``) for capacity questions.

Legacy flag surfaces, kept as thin shims that construct the equivalent
``RunSpec`` (their histories are bit-identical to the spec path -- oracle
tested):

- ``train``     -- run one method on one benchmark and print the history.
- ``simulate``  -- run a named federation scenario with checkpoint/resume.

Plus the analytic utilities:

- ``epsilon``   -- query the accountant: eps for (sigma, steps, q, delta).
- ``calibrate`` -- invert the accountant: the sigma (or q) achieving a
                   target epsilon.
- ``datasets``  -- list the registered benchmark federations.
- ``figure``    -- regenerate a registered paper experiment.
- ``trace``     -- summarise a ``trace.jsonl`` written by an
                   ``[obs]``-enabled run (``trace summary <file>``).

Examples::

    python -m repro run --config examples/specs/quickstart.toml
    python -m repro run --config exp.toml --set method.sigma=1.0 \\
        --set sim.scenario=bandwidth-cap
    python -m repro sweep --config examples/specs/sigma_sweep.toml
    python -m repro validate-config examples/specs/*.toml
    python -m repro train --dataset creditcard --method uldp-avg-w \\
        --rounds 10 --users 100 --distribution zipf
    python -m repro simulate --scenario silo-outage --rounds 20 \\
        --checkpoint-dir ckpt/
    python -m repro epsilon --sigma 5.0 --steps 100000 --sample-rate 0.01
"""

from __future__ import annotations

import argparse
import sys

from repro.api import builtin as _builtin  # noqa: F401  (registry population)
from repro.api.registries import DATASETS, METHODS, UnknownNameError
from repro.api.spec import (
    RunSpec,
    SpecError,
    apply_overrides,
    load_spec_tree,
    parse_assignment,
)


def _fail(exc: BaseException) -> int:
    print(f"error: {exc}", file=sys.stderr)
    return 2


def _configure_logging(level_name: str) -> None:
    """Route stdlib logging to stderr at the requested level.

    Result lines (port banners, histories, tables) stay on stdout so
    scripts that parse them keep working at any log level.
    """
    import logging

    logging.basicConfig(
        level=getattr(logging, level_name.upper()),
        stream=sys.stderr,
        format="%(asctime)s %(levelname)s %(name)s: %(message)s",
    )


# -- spec construction from legacy flags (the shims) --------------------------


def _train_method_tree(args) -> dict:
    """The [method] table the legacy ``train`` flags describe.

    Mirrors the historical flag->constructor mapping exactly: only the
    fields the chosen method consumed are set, so the resulting spec
    reproduces the legacy run bit for bit.
    """
    name = args.method
    if name == "default":
        return {"name": name, "local_epochs": args.local_epochs}
    if name == "uldp-naive":
        return {"name": name, "sigma": args.sigma, "local_epochs": args.local_epochs}
    if name == "uldp-group":
        tree = {
            "name": name,
            "sigma": args.sigma,
            "local_epochs": args.local_epochs,
            "group_size": args.group_size,
        }
        if args.batch_size is not None:
            tree["batch_size"] = args.batch_size
        return tree
    if name in ("uldp-sgd", "uldp-sgd-w"):
        tree = {"name": name, "sigma": args.sigma}
        if args.sample_rate is not None:
            tree["sample_rate"] = args.sample_rate
        return tree
    # uldp-avg / uldp-avg-w / secure-uldp-avg / third-party registrations.
    tree = {"name": name, "sigma": args.sigma, "local_epochs": args.local_epochs}
    if args.sample_rate is not None:
        tree["sample_rate"] = args.sample_rate
    return tree


def _train_compression_tree(args) -> dict | None:
    """The [compression] table the train flags describe (None = dense)."""
    lossy = args.compress != "none" or args.quantize_bits is not None
    if not lossy:
        if args.error_feedback or args.compress_downlink:
            raise ValueError(
                "--error-feedback/--compress-downlink require a lossy "
                "pipeline; add --compress topk|randk or --quantize-bits"
            )
        return None
    tree = {
        "sparsify": args.compress,
        "fraction": args.compress_fraction,
        "error_feedback": args.error_feedback,
        "downlink": args.compress_downlink,
        "seed": args.seed,
    }
    if args.quantize_bits is not None:
        tree["quantize_bits"] = args.quantize_bits
    return tree


def train_spec_tree(args) -> dict:
    """The full RunSpec tree equivalent to a legacy ``train`` invocation."""
    tree = {
        "name": f"train-{args.dataset}-{args.method}",
        "seed": args.seed,
        "rounds": args.rounds,
        "dataset": {
            "name": args.dataset,
            "users": args.users,
            "silos": args.silos,
            "records": args.records,
            "distribution": args.distribution,
            "non_iid": args.non_iid,
        },
        "method": _train_method_tree(args),
        "privacy": {"delta": args.delta},
    }
    compression = _train_compression_tree(args)
    if compression is not None:
        tree["compression"] = compression
    # getattr: oracle tests and older callers build bare Namespaces
    # without the engine flags.
    workers = getattr(args, "workers", None)
    shard_size = getattr(args, "shard_size", None)
    if workers is not None or shard_size is not None:
        engine = {}
        if workers is not None:
            engine["workers"] = workers
        if shard_size is not None:
            engine["shard_size"] = shard_size
        tree["engine"] = engine
    return tree


def simulate_spec_tree(args) -> dict:
    """The RunSpec tree equivalent to a legacy ``simulate`` invocation."""
    tree = {
        "name": f"simulate-{args.scenario}",
        "seed": args.seed,
        "sim": {
            "scenario": args.scenario,
            "scale": args.scale,
            "checkpoint_dir": args.checkpoint_dir,
            "checkpoint_every": args.checkpoint_every,
        },
    }
    if args.rounds is not None:
        tree["rounds"] = args.rounds
    return tree


# -- shared result printing ---------------------------------------------------


def _print_train_result(result, output: str | None) -> None:
    from repro.report import comparison_table, format_bytes, save_histories

    history = result.history
    print()
    print(comparison_table([history]))
    # Every run records wire bytes (dense defaults without compression),
    # so the totals are always available.
    up_mean, down_mean = history.comm_summary()
    print(
        f"\nwire traffic: {format_bytes(history.total_uplink_bytes)} up / "
        f"{format_bytes(history.total_downlink_bytes)} down total "
        f"({format_bytes(up_mean)}/rd up, {format_bytes(down_mean)}/rd down)"
    )
    if output:
        save_histories([history], output)
        print(f"\nhistory saved to {output}")


def _print_sim_result(sim) -> None:
    from repro.report import comparison_table

    print(comparison_table([sim.history]))
    releases = sim.method.accountant.releases
    if releases:
        worst = max(releases, key=lambda r: r.sensitivity)
        print(
            f"\n{len(releases)} releases; worst-case realised sensitivity "
            f"{worst.sensitivity:.3f} C (noise scale {worst.noise_scale:.3f})"
        )


# -- subcommands --------------------------------------------------------------


def cmd_train(args) -> int:
    from repro.api.runner import run

    try:
        spec = RunSpec.from_dict(train_spec_tree(args))
        result = run(spec)
    except (NotImplementedError, ValueError, UnknownNameError) as exc:
        return _fail(exc)
    print(result.dataset.summary())
    _print_train_result(result, args.output)
    return 0


def cmd_simulate(args) -> int:
    from repro.report import save_histories
    from repro.sim import continue_simulation

    if args.list:
        from repro.sim import available_scenarios, describe_scenario

        for name in available_scenarios():
            print(f"{name:<22s} {describe_scenario(name)}")
        return 0
    if args.resume:
        if args.scenario or args.rounds is not None or args.seed != 0:
            print(
                "note: --resume rebuilds from the checkpoint's stored "
                "spec/scenario; other flags are ignored",
                file=sys.stderr,
            )
        try:
            sim = continue_simulation(
                args.resume, checkpoint_every=args.checkpoint_every
            )
        except (ValueError, UnknownNameError) as exc:
            return _fail(exc)
        print(f"resumed from {args.resume}")
    elif args.scenario:
        from repro.api.runner import run

        try:
            spec = RunSpec.from_dict(simulate_spec_tree(args))
            sim = run(spec).simulator
        except (ValueError, UnknownNameError) as exc:
            return _fail(exc)
    else:
        print("specify --scenario, --resume, or --list", file=sys.stderr)
        return 2
    _print_sim_result(sim)
    if args.checkpoint_dir and not args.resume:
        print(f"checkpoints in {args.checkpoint_dir}")
    if args.output:
        save_histories([sim.history], args.output)
        print(f"history saved to {args.output}")
    return 0


def cmd_serve(args) -> int:
    """Run a simulate-mode [net] spec as the federation server."""
    _configure_logging(args.log_level)
    from repro.api.runner import validate_spec_names
    from repro.core.weighting import QuorumError
    from repro.net.server import FederationServer
    from repro.net.transport import TransportError

    try:
        if args.resume:
            if args.config or args.set:
                raise SpecError(
                    "--resume rebuilds from the checkpoint's stored spec; "
                    "drop --config/--set (overrides would break the "
                    "spec-hash handshake with the silos)"
                )
            from repro.sim.scenarios import resume_simulator

            sim, extra = resume_simulator(args.resume)
            if not extra or "spec" not in extra:
                raise SpecError(
                    "checkpoint carries no spec snapshot; only checkpoints "
                    "written by `repro serve`/`repro run` can be served"
                )
            spec = RunSpec.from_dict(extra["spec"])
            server = FederationServer(spec, sim=sim)
            print(f"resumed from {args.resume} at round "
                  f"{sim.rounds_completed}")
        else:
            spec = _spec_from_config_args(args)
            validate_spec_names(spec)
            server = FederationServer(spec)
    except (ValueError, UnknownNameError) as exc:
        return _fail(exc)
    port = server.bind()
    print(
        f"serving {spec.name} on {spec.net.host}:{port} "
        f"({server.sim.fed.n_silos} silos, {server.sim.config.rounds} "
        "rounds)",
        flush=True,
    )
    procs = []
    if args.spawn_silos:
        import json
        import subprocess
        import tempfile

        # The silos rebuild everything from the spec, so hand them the
        # resolved tree (uniform for the fresh and the resume case).
        with tempfile.NamedTemporaryFile(
            "w", suffix=".json", prefix="repro-net-", delete=False
        ) as tmp:
            json.dump(spec.to_dict(), tmp)
            spec_file = tmp.name
        for s in range(server.sim.fed.n_silos):
            procs.append(subprocess.Popen(
                [sys.executable, "-m", "repro", "silo",
                 "--config", spec_file, "--silo-id", str(s),
                 "--port", str(port), "--log-level", args.log_level]
            ))
    try:
        server.serve()
    except (QuorumError, TransportError) as exc:
        return _fail(exc)
    finally:
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
    _print_sim_result(server.sim)
    if args.output:
        from repro.report import save_histories

        save_histories([server.sim.history], args.output)
        print(f"history saved to {args.output}")
    return 0


def cmd_silo(args) -> int:
    """Join a federation server as one silo worker process."""
    _configure_logging(args.log_level)
    try:
        spec = _spec_from_config_args(args)
        from repro.api.runner import validate_spec_names

        validate_spec_names(spec)
        from repro.net.silo_client import SiloClient

        client = SiloClient(spec, args.silo_id, port=args.port)
    except (ValueError, UnknownNameError) as exc:
        return _fail(exc)
    return client.run()


def cmd_trace(args) -> int:
    """Summarise a trace.jsonl written by an [obs]-enabled run."""
    from repro.obs.summary import TraceError, load_trace, render_summary

    try:
        records = load_trace(args.trace)
        print(render_summary(records, slowest=args.slowest))
    except TraceError as exc:
        return _fail(exc)
    return 0


def _spec_from_config_args(args) -> RunSpec:
    """Shared --config/--set resolution for ``run`` and ``sweep``."""
    tree = load_spec_tree(args.config) if args.config else {}
    if args.set:
        assignments = dict(parse_assignment(item) for item in args.set)
        tree = apply_overrides(tree, assignments)
    return RunSpec.from_dict(tree)


def cmd_run(args) -> int:
    from repro.api.runner import run, validate_spec_names

    try:
        spec = _spec_from_config_args(args)
        validate_spec_names(spec)
        result = run(spec)
    except (NotImplementedError, ValueError, UnknownNameError) as exc:
        return _fail(exc)
    print(f"{spec.name} (spec {result.spec_hash})")
    if result.simulator is not None:
        _print_sim_result(result.simulator)
        if args.output:
            from repro.report import save_histories

            save_histories([result.history], args.output)
            print(f"history saved to {args.output}")
    else:
        print(result.dataset.summary())
        _print_train_result(result, args.output)
    return 0


def cmd_sweep(args) -> int:
    from repro.api.sweep import run_sweep

    try:
        spec = _spec_from_config_args(args)
        if not spec.sweep:
            raise SpecError(
                "the spec declares no [sweep] axes; add e.g. "
                '[sweep] "method.sigma" = [0.5, 1.0] (or use `repro run`)'
            )
        # run_sweep validates every grid point's registry names up front.
        sweep = run_sweep(
            spec,
            workers=args.workers,
            prune_cost_seconds=args.prune_cost_seconds,
            prune_cost_bytes=args.prune_cost_bytes,
        )
    except (NotImplementedError, ValueError, UnknownNameError) as exc:
        return _fail(exc)
    print(f"{spec.name}: {len(sweep.results)} runs (base spec {spec.hash()})\n")
    if sweep.pruned:
        print(f"cost pruning skipped {len(sweep.pruned)} grid point(s):")
        for item in sweep.pruned:
            print(
                f"  {item.label}: predicted {item.metric} "
                f"{item.predicted:.4g} > budget {item.budget:.4g}"
            )
        print()
    print(sweep.table())
    if args.output:
        from repro.report import save_histories

        save_histories(sweep.histories, args.output)
        print(f"\n{len(sweep.histories)} histories saved to {args.output}")
    return 0


def cmd_cost(args) -> int:
    """Predict per-phase cost of a spec, or invert for a user capacity."""
    from repro.cost.calibrate import load_calibration
    from repro.cost.planner import predict, solve_max_users

    try:
        spec = _spec_from_config_args(args)
        calibration = (
            load_calibration(args.calibration) if args.calibration else None
        )
        if args.solve_for:
            answer = solve_max_users(
                spec,
                budget_seconds=args.budget_seconds,
                budget_uplink_bytes=args.budget_uplink_bytes,
                budget_memory_bytes=args.budget_memory_bytes,
                calibration=calibration,
            )
            print(f"{spec.name} (spec {spec.hash()})")
            print(answer.render())
        else:
            report = predict(spec, calibration=calibration)
            print(report.render())
    except (OSError, ValueError, UnknownNameError) as exc:
        return _fail(exc)
    return 0


def cmd_validate_config(args) -> int:
    from repro.api.runner import validate_spec_names
    from repro.api.spec import expand_sweep

    failures = 0
    for path in args.files:
        try:
            spec = RunSpec.from_file(path)
            points = expand_sweep(spec)
            for point in points:
                validate_spec_names(point.spec)
        except (OSError, ValueError, UnknownNameError) as exc:
            print(f"{path}: FAIL: {exc}", file=sys.stderr)
            failures += 1
            continue
        mode = "simulate" if spec.is_simulation else "train"
        grid = f", {len(points)}-point sweep" if spec.sweep else ""
        print(f"{path}: OK ({mode}{grid}, spec {spec.hash()})")
    return 1 if failures else 0


def cmd_epsilon(args) -> int:
    from repro.accounting import PrivacyAccountant

    acct = PrivacyAccountant()
    acct.step(args.sigma, sample_rate=args.sample_rate, steps=args.steps)
    eps, alpha = acct.get_epsilon_and_alpha(args.delta)
    print(
        f"(sigma={args.sigma}, q={args.sample_rate}, steps={args.steps}) => "
        f"eps={eps:.4f} at delta={args.delta} (optimal alpha={alpha:g})"
    )
    if args.group_size > 1:
        g_eps = acct.get_group_epsilon(args.delta, args.group_size, route=args.route)
        print(
            f"group-privacy conversion (k={args.group_size}, {args.route} route) => "
            f"eps={g_eps:.4f}"
        )
    return 0


def cmd_calibrate(args) -> int:
    from repro.accounting import calibrate_noise_multiplier, calibrate_sample_rate

    if args.solve_for == "sigma":
        sigma = calibrate_noise_multiplier(
            args.target_epsilon, args.delta, args.steps, sample_rate=args.sample_rate
        )
        print(
            f"target eps={args.target_epsilon} at delta={args.delta}, "
            f"steps={args.steps}, q={args.sample_rate} => sigma={sigma:.4f}"
        )
    else:
        q = calibrate_sample_rate(
            args.target_epsilon, args.delta, args.steps, noise_multiplier=args.sigma
        )
        print(
            f"target eps={args.target_epsilon} at delta={args.delta}, "
            f"steps={args.steps}, sigma={args.sigma} => q={q:.4f}"
        )
    return 0


def cmd_datasets(args) -> int:
    for name in DATASETS.names():
        print(f"{name:<14s} {DATASETS.describe(name)}")
    return 0


def cmd_methods(args) -> int:
    for name in METHODS.names():
        print(f"{name:<16s} {METHODS.describe(name)}")
    return 0


def cmd_figure(args) -> int:
    from repro.experiments import (
        available_experiments,
        describe_experiment,
        run_experiment,
    )
    from repro.report import save_histories

    if args.list:
        for name in available_experiments():
            print(f"{name:<8s} {describe_experiment(name)}")
        return 0
    if not args.name:
        print("specify an experiment name or --list", file=sys.stderr)
        return 2
    try:
        result = run_experiment(args.name, scale=args.scale, seed=args.seed)
    except (ValueError, UnknownNameError) as exc:
        return _fail(exc)
    print(f"{result.name}: {result.description}\n")
    print(result.table())
    if args.output and result.histories:
        save_histories(result.histories, args.output)
        print(f"\nhistories saved to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Uldp-FL reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser(
        "run", help="execute one RunSpec config (TOML/JSON)"
    )
    run_p.add_argument("--config", type=str, default=None,
                       help="spec file; defaults apply when omitted")
    run_p.add_argument("--set", action="append", metavar="PATH=VALUE",
                       help="dotted-path override, e.g. method.sigma=1.0")
    run_p.add_argument("--output", type=str, default=None,
                       help="write the history JSON here")
    run_p.set_defaults(func=cmd_run)

    sweep_p = sub.add_parser(
        "sweep", help="expand a spec's [sweep] grid and aggregate one table"
    )
    sweep_p.add_argument("--config", type=str, default=None)
    sweep_p.add_argument("--set", action="append", metavar="PATH=VALUE",
                         help="dotted-path override; sweep.<path>=[..] sets an axis")
    sweep_p.add_argument("--workers", type=int, default=None,
                         help="run grid points across a process pool")
    sweep_p.add_argument("--prune-cost-seconds", type=float, default=None,
                         help="skip grid points whose predicted whole-run "
                         "wall-clock exceeds this (cost model; logged)")
    sweep_p.add_argument("--prune-cost-bytes", type=float, default=None,
                         help="skip grid points whose predicted whole-run "
                         "uplink bytes exceed this (cost model; logged)")
    sweep_p.add_argument("--output", type=str, default=None,
                         help="write all child histories JSON here")
    sweep_p.set_defaults(func=cmd_sweep)

    cost_p = sub.add_parser(
        "cost",
        help="predict a spec's per-phase cost (seconds/bytes/ciphertexts/"
        "memory) or solve capacity questions",
    )
    cost_p.add_argument("--config", type=str, default=None,
                        help="spec file; defaults apply when omitted")
    cost_p.add_argument("--set", action="append", metavar="PATH=VALUE",
                        help="dotted-path override, e.g. dataset.n_users=1e6")
    cost_p.add_argument("--calibration", type=str, default=None,
                        help="calibration.json to price with (default: the "
                        "committed fit, or the spec's [cost].calibration)")
    cost_p.add_argument("--solve-for", choices=["users"], default=None,
                        help="invert the model: max users within the budgets")
    cost_p.add_argument("--budget-seconds", type=float, default=None,
                        help="per-round wall-clock budget for --solve-for")
    cost_p.add_argument("--budget-uplink-bytes", type=float, default=None,
                        help="per-round uplink byte budget for --solve-for")
    cost_p.add_argument("--budget-memory-bytes", type=float, default=None,
                        help="whole-run resident memory budget for --solve-for")
    cost_p.set_defaults(func=cmd_cost)

    val = sub.add_parser(
        "validate-config", help="validate spec files without running them"
    )
    val.add_argument("files", nargs="+", help="spec files (.toml/.json)")
    val.set_defaults(func=cmd_validate_config)

    train = sub.add_parser(
        "train",
        help="run one method on one benchmark (legacy flag shim over `run`)",
    )
    train.add_argument("--dataset", type=str, default="creditcard",
                       help="registered dataset name (see `repro datasets`)")
    train.add_argument("--method", type=str, default="uldp-avg-w",
                       help="registered method name (see `repro methods`)")
    train.add_argument("--rounds", type=int, default=5)
    train.add_argument("--users", type=int, default=100)
    train.add_argument("--silos", type=int, default=5)
    train.add_argument("--records", type=int, default=4000)
    train.add_argument("--distribution", choices=["uniform", "zipf"], default="zipf")
    train.add_argument("--non-iid", action="store_true")
    train.add_argument("--sigma", type=float, default=5.0)
    train.add_argument("--delta", type=float, default=1e-5)
    train.add_argument("--local-epochs", type=int, default=2)
    train.add_argument("--batch-size", type=int, default=None)
    train.add_argument("--group-size", type=int, default=8)
    train.add_argument("--sample-rate", type=float, default=None,
                       help="user-level sub-sampling rate q (Algorithm 4)")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--compress", type=str, default="none",
                       help="uplink sparsifier (post-noise; epsilon unchanged)")
    train.add_argument("--compress-fraction", type=float, default=0.05,
                       help="kept coordinate fraction for topk/randk")
    train.add_argument("--quantize-bits", type=int, default=None,
                       help="stochastic b-bit quantization of sent values")
    train.add_argument("--error-feedback", action="store_true",
                       help="per-silo error-feedback residual accumulators")
    train.add_argument("--compress-downlink", action="store_true",
                       help="also compress the server's broadcast update")
    train.add_argument("--workers", type=int, default=None,
                       help="shard worker processes (0 = in-process; "
                            "results are bit-identical either way)")
    train.add_argument("--shard-size", type=int, default=None,
                       help="sampled users per shard task (see docs/scaleout.md)")
    train.add_argument("--output", type=str, default=None,
                       help="write the history JSON here")
    train.set_defaults(func=cmd_train)

    eps = sub.add_parser("epsilon", help="accountant query")
    eps.add_argument("--sigma", type=float, required=True)
    eps.add_argument("--steps", type=int, required=True)
    eps.add_argument("--sample-rate", type=float, default=1.0)
    eps.add_argument("--delta", type=float, default=1e-5)
    eps.add_argument("--group-size", type=int, default=1)
    eps.add_argument("--route", choices=["rdp", "dp"], default="rdp")
    eps.set_defaults(func=cmd_epsilon)

    cal = sub.add_parser("calibrate", help="solve for sigma or q")
    cal.add_argument("--target-epsilon", type=float, required=True)
    cal.add_argument("--delta", type=float, default=1e-5)
    cal.add_argument("--steps", type=int, required=True)
    cal.add_argument("--solve-for", choices=["sigma", "q"], default="sigma")
    cal.add_argument("--sigma", type=float, default=5.0,
                     help="fixed sigma when solving for q")
    cal.add_argument("--sample-rate", type=float, default=1.0,
                     help="fixed q when solving for sigma")
    cal.set_defaults(func=cmd_calibrate)

    ds = sub.add_parser("datasets", help="list registered benchmark federations")
    ds.set_defaults(func=cmd_datasets)

    methods = sub.add_parser("methods", help="list registered FL methods")
    methods.set_defaults(func=cmd_methods)

    simulate = sub.add_parser(
        "simulate",
        help="run a federation scenario (legacy flag shim over `run`)",
    )
    simulate.add_argument("--scenario", type=str, default=None,
                          help="scenario name (see --list)")
    simulate.add_argument("--list", action="store_true", help="list scenarios")
    simulate.add_argument("--scale", choices=["smoke", "small", "paper"],
                          default="small")
    simulate.add_argument("--rounds", type=int, default=None,
                          help="override the scale's round count")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--checkpoint-dir", type=str, default=None,
                          help="snapshot the simulation state here")
    simulate.add_argument("--checkpoint-every", type=int, default=None,
                          help="rounds between snapshots (default: rounds/4)")
    simulate.add_argument("--resume", type=str, default=None, metavar="CKPT",
                          help="resume from a checkpoint directory "
                          "(refuses a tampered spec)")
    simulate.add_argument("--output", type=str, default=None,
                          help="write the history JSON here")
    simulate.set_defaults(func=cmd_simulate)

    serve = sub.add_parser(
        "serve",
        help="run a [net] spec as the federation server (silos connect "
        "as separate `repro silo` processes)",
    )
    serve.add_argument("--config", type=str, default=None,
                       help="simulate-mode spec with a [net] section")
    serve.add_argument("--set", action="append", metavar="PATH=VALUE",
                       help="dotted-path override, e.g. net.port=7000")
    serve.add_argument("--resume", type=str, default=None, metavar="CKPT",
                       help="resume a killed run from its checkpoint "
                       "directory (silos reconnect; refuses a tampered "
                       "spec)")
    serve.add_argument("--spawn-silos", action="store_true",
                       help="launch the scenario's silo processes locally "
                       "(single-machine runs and smoke tests)")
    serve.add_argument("--output", type=str, default=None,
                       help="write the history JSON here")
    serve.add_argument("--log-level", type=str, default="warning",
                       choices=["debug", "info", "warning", "error"],
                       help="stdlib logging threshold (stderr); spawned "
                       "silos inherit it")
    serve.set_defaults(func=cmd_serve)

    silo = sub.add_parser(
        "silo", help="join a federation server as one silo worker"
    )
    silo.add_argument("--config", type=str, default=None,
                      help="the server's spec file (hashes must match)")
    silo.add_argument("--set", action="append", metavar="PATH=VALUE",
                      help="dotted-path override (must mirror the server's)")
    silo.add_argument("--silo-id", type=int, required=True,
                      help="this worker's silo index (0-based)")
    silo.add_argument("--port", type=int, default=None,
                      help="server port (overrides net.port; required when "
                      "the spec uses port 0)")
    silo.add_argument("--log-level", type=str, default="warning",
                      choices=["debug", "info", "warning", "error"],
                      help="stdlib logging threshold (stderr)")
    silo.set_defaults(func=cmd_silo)

    trace = sub.add_parser(
        "trace", help="inspect a trace.jsonl written by an [obs]-enabled run"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    tsum = trace_sub.add_parser(
        "summary",
        help="per-round/per-phase/per-silo tables, slowest spans, faults",
    )
    tsum.add_argument("trace", help="path to the trace.jsonl file")
    tsum.add_argument("--slowest", type=int, default=5,
                      help="how many slowest spans to list")
    tsum.set_defaults(func=cmd_trace)

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument("name", nargs="?", default=None,
                     help="experiment name (see --list)")
    fig.add_argument("--list", action="store_true", help="list experiments")
    fig.add_argument("--scale", choices=["smoke", "small", "paper"],
                     default="small")
    fig.add_argument("--seed", type=int, default=0)
    fig.add_argument("--output", type=str, default=None,
                     help="write history JSON here (utility figures)")
    fig.set_defaults(func=cmd_figure)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
