"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

- ``train``     -- run one method on one benchmark and print the history
                   (optionally save it as JSON).
- ``simulate``  -- run a named federation scenario (dropout, stragglers,
                   churn, async aggregation) with checkpoint/resume.
- ``epsilon``   -- query the accountant: eps for (sigma, steps, q, delta),
                   optionally through a group-privacy conversion.
- ``calibrate`` -- invert the accountant: the sigma (or q) achieving a
                   target epsilon.
- ``datasets``  -- list the available benchmark federations.

Examples::

    python -m repro train --dataset creditcard --method uldp-avg-w \\
        --rounds 10 --users 100 --distribution zipf
    python -m repro train --method uldp-avg-w --compress topk \\
        --compress-fraction 0.05 --quantize-bits 8 --error-feedback
    python -m repro simulate --scenario silo-outage --rounds 20 \\
        --checkpoint-dir ckpt/
    python -m repro simulate --resume ckpt/
    python -m repro epsilon --sigma 5.0 --steps 100000 --sample-rate 0.01 \\
        --group-size 8
    python -m repro calibrate --target-epsilon 2.0 --steps 100
"""

from __future__ import annotations

import argparse
import sys

from repro.accounting import (
    PrivacyAccountant,
    calibrate_noise_multiplier,
    calibrate_sample_rate,
)
from repro.compress import SPARSIFIERS, CompressionSpec
from repro.core import Default, Trainer, UldpAvg, UldpGroup, UldpNaive, UldpSgd
from repro.data import (
    build_creditcard_benchmark,
    build_heartdisease_benchmark,
    build_mnist_benchmark,
    build_tcgabrca_benchmark,
)
from repro.report import comparison_table, save_histories

DATASETS = {
    "creditcard": "tabular fraud detection, 5 silos, MLP (~4K params)",
    "mnist": "10-class images, 5 silos, CNN (~20K params)",
    "heartdisease": "4 fixed hospital silos, logistic model",
    "tcgabrca": "6 fixed silos, survival data, Cox model / C-index",
}

METHODS = ["default", "uldp-naive", "uldp-group", "uldp-sgd", "uldp-avg", "uldp-avg-w"]


def _build_dataset(args) -> object:
    if args.dataset == "creditcard":
        return build_creditcard_benchmark(
            n_users=args.users, n_silos=args.silos, distribution=args.distribution,
            n_records=args.records, seed=args.seed,
        )
    if args.dataset == "mnist":
        return build_mnist_benchmark(
            n_users=args.users, n_silos=args.silos, distribution=args.distribution,
            non_iid=args.non_iid, n_records=args.records, seed=args.seed,
        )
    if args.dataset == "heartdisease":
        return build_heartdisease_benchmark(
            n_users=args.users, distribution=args.distribution, seed=args.seed,
        )
    if args.dataset == "tcgabrca":
        return build_tcgabrca_benchmark(
            n_users=args.users, distribution=args.distribution, seed=args.seed,
        )
    raise ValueError(f"unknown dataset {args.dataset!r}")


def _build_method(args):
    sigma = args.sigma
    if args.method == "default":
        return Default(local_epochs=args.local_epochs)
    if args.method == "uldp-naive":
        return UldpNaive(noise_multiplier=sigma, local_epochs=args.local_epochs)
    if args.method == "uldp-group":
        return UldpGroup(
            group_size=args.group_size, noise_multiplier=sigma,
            local_steps=args.local_epochs, expected_batch_size=args.batch_size or 256,
        )
    if args.method == "uldp-sgd":
        return UldpSgd(noise_multiplier=sigma, user_sample_rate=args.sample_rate)
    if args.method == "uldp-avg":
        return UldpAvg(
            noise_multiplier=sigma, local_epochs=args.local_epochs,
            user_sample_rate=args.sample_rate,
        )
    if args.method == "uldp-avg-w":
        return UldpAvg(
            noise_multiplier=sigma, local_epochs=args.local_epochs,
            weighting="proportional", user_sample_rate=args.sample_rate,
        )
    raise ValueError(f"unknown method {args.method!r}")


def _build_compression(args) -> CompressionSpec | None:
    """The CompressionSpec the train flags describe (None = dense)."""
    lossy = args.compress != "none" or args.quantize_bits is not None
    if not lossy:
        if args.error_feedback or args.compress_downlink:
            raise ValueError(
                "--error-feedback/--compress-downlink require a lossy "
                "pipeline; add --compress topk|randk or --quantize-bits"
            )
        return None
    return CompressionSpec(
        sparsify=args.compress,
        fraction=args.compress_fraction,
        quantize_bits=args.quantize_bits,
        error_feedback=args.error_feedback,
        downlink=args.compress_downlink,
        seed=args.seed,
    )


def cmd_train(args) -> int:
    fed = _build_dataset(args)
    method = _build_method(args)
    print(fed.summary())
    try:
        trainer = Trainer(
            fed, method, rounds=args.rounds, delta=args.delta, seed=args.seed,
            compression=_build_compression(args),
        )
    except (NotImplementedError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    history = trainer.run()
    print()
    print(comparison_table([history]))
    # Every run records wire bytes (dense defaults without compression),
    # so the totals are always available.
    up_mean, down_mean = history.comm_summary()
    from repro.report import format_bytes

    print(
        f"\nwire traffic: {format_bytes(history.total_uplink_bytes)} up / "
        f"{format_bytes(history.total_downlink_bytes)} down total "
        f"({format_bytes(up_mean)}/rd up, {format_bytes(down_mean)}/rd down)"
    )
    if args.output:
        save_histories([history], args.output)
        print(f"\nhistory saved to {args.output}")
    return 0


def cmd_epsilon(args) -> int:
    acct = PrivacyAccountant()
    acct.step(args.sigma, sample_rate=args.sample_rate, steps=args.steps)
    eps, alpha = acct.get_epsilon_and_alpha(args.delta)
    print(
        f"(sigma={args.sigma}, q={args.sample_rate}, steps={args.steps}) => "
        f"eps={eps:.4f} at delta={args.delta} (optimal alpha={alpha:g})"
    )
    if args.group_size > 1:
        g_eps = acct.get_group_epsilon(args.delta, args.group_size, route=args.route)
        print(
            f"group-privacy conversion (k={args.group_size}, {args.route} route) => "
            f"eps={g_eps:.4f}"
        )
    return 0


def cmd_calibrate(args) -> int:
    if args.solve_for == "sigma":
        sigma = calibrate_noise_multiplier(
            args.target_epsilon, args.delta, args.steps, sample_rate=args.sample_rate
        )
        print(
            f"target eps={args.target_epsilon} at delta={args.delta}, "
            f"steps={args.steps}, q={args.sample_rate} => sigma={sigma:.4f}"
        )
    else:
        q = calibrate_sample_rate(
            args.target_epsilon, args.delta, args.steps, noise_multiplier=args.sigma
        )
        print(
            f"target eps={args.target_epsilon} at delta={args.delta}, "
            f"steps={args.steps}, sigma={args.sigma} => q={q:.4f}"
        )
    return 0


def cmd_simulate(args) -> int:
    from repro.sim import (
        available_scenarios,
        continue_simulation,
        describe_scenario,
        run_scenario,
    )

    if args.list:
        for name in available_scenarios():
            print(f"{name:<22s} {describe_scenario(name)}")
        return 0
    if args.resume:
        if args.scenario or args.rounds is not None or args.seed != 0:
            print(
                "note: --resume rebuilds from the checkpoint's stored "
                "scenario/scale/seed/rounds; other flags are ignored",
                file=sys.stderr,
            )
        sim = continue_simulation(args.resume, checkpoint_every=args.checkpoint_every)
        print(f"resumed from {args.resume}")
    elif args.scenario:
        sim = run_scenario(
            args.scenario,
            scale=args.scale,
            seed=args.seed,
            rounds=args.rounds,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
        )
    else:
        print("specify --scenario, --resume, or --list", file=sys.stderr)
        return 2
    print(comparison_table([sim.history]))
    releases = sim.method.accountant.releases
    if releases:
        worst = max(releases, key=lambda r: r.sensitivity)
        print(
            f"\n{len(releases)} releases; worst-case realised sensitivity "
            f"{worst.sensitivity:.3f} C (noise scale {worst.noise_scale:.3f})"
        )
    if args.checkpoint_dir and not args.resume:
        print(f"checkpoints in {args.checkpoint_dir}")
    if args.output:
        save_histories([sim.history], args.output)
        print(f"history saved to {args.output}")
    return 0


def cmd_datasets(args) -> int:
    for name, description in DATASETS.items():
        print(f"{name:<14s} {description}")
    return 0


def cmd_figure(args) -> int:
    from repro.experiments import (
        available_experiments,
        describe_experiment,
        run_experiment,
    )

    if args.list:
        for name in available_experiments():
            print(f"{name:<8s} {describe_experiment(name)}")
        return 0
    if not args.name:
        print("specify an experiment name or --list", file=sys.stderr)
        return 2
    result = run_experiment(args.name, scale=args.scale, seed=args.seed)
    print(f"{result.name}: {result.description}\n")
    print(result.table())
    if args.output and result.histories:
        save_histories(result.histories, args.output)
        print(f"\nhistories saved to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Uldp-FL reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="run one method on one benchmark")
    train.add_argument("--dataset", choices=sorted(DATASETS), default="creditcard")
    train.add_argument("--method", choices=METHODS, default="uldp-avg-w")
    train.add_argument("--rounds", type=int, default=5)
    train.add_argument("--users", type=int, default=100)
    train.add_argument("--silos", type=int, default=5)
    train.add_argument("--records", type=int, default=4000)
    train.add_argument("--distribution", choices=["uniform", "zipf"], default="zipf")
    train.add_argument("--non-iid", action="store_true")
    train.add_argument("--sigma", type=float, default=5.0)
    train.add_argument("--delta", type=float, default=1e-5)
    train.add_argument("--local-epochs", type=int, default=2)
    train.add_argument("--batch-size", type=int, default=None)
    train.add_argument("--group-size", type=int, default=8)
    train.add_argument("--sample-rate", type=float, default=None,
                       help="user-level sub-sampling rate q (Algorithm 4)")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--compress", choices=list(SPARSIFIERS), default="none",
                       help="uplink sparsifier (post-noise; epsilon unchanged)")
    train.add_argument("--compress-fraction", type=float, default=0.05,
                       help="kept coordinate fraction for topk/randk")
    train.add_argument("--quantize-bits", type=int, default=None,
                       help="stochastic b-bit quantization of sent values")
    train.add_argument("--error-feedback", action="store_true",
                       help="per-silo error-feedback residual accumulators")
    train.add_argument("--compress-downlink", action="store_true",
                       help="also compress the server's broadcast update")
    train.add_argument("--output", type=str, default=None,
                       help="write the history JSON here")
    train.set_defaults(func=cmd_train)

    eps = sub.add_parser("epsilon", help="accountant query")
    eps.add_argument("--sigma", type=float, required=True)
    eps.add_argument("--steps", type=int, required=True)
    eps.add_argument("--sample-rate", type=float, default=1.0)
    eps.add_argument("--delta", type=float, default=1e-5)
    eps.add_argument("--group-size", type=int, default=1)
    eps.add_argument("--route", choices=["rdp", "dp"], default="rdp")
    eps.set_defaults(func=cmd_epsilon)

    cal = sub.add_parser("calibrate", help="solve for sigma or q")
    cal.add_argument("--target-epsilon", type=float, required=True)
    cal.add_argument("--delta", type=float, default=1e-5)
    cal.add_argument("--steps", type=int, required=True)
    cal.add_argument("--solve-for", choices=["sigma", "q"], default="sigma")
    cal.add_argument("--sigma", type=float, default=5.0,
                     help="fixed sigma when solving for q")
    cal.add_argument("--sample-rate", type=float, default=1.0,
                     help="fixed q when solving for sigma")
    cal.set_defaults(func=cmd_calibrate)

    ds = sub.add_parser("datasets", help="list benchmark federations")
    ds.set_defaults(func=cmd_datasets)

    simulate = sub.add_parser(
        "simulate", help="run a federation scenario (dropout/stragglers/async)"
    )
    simulate.add_argument("--scenario", type=str, default=None,
                          help="scenario name (see --list)")
    simulate.add_argument("--list", action="store_true", help="list scenarios")
    simulate.add_argument("--scale", choices=["smoke", "small", "paper"],
                          default="small")
    simulate.add_argument("--rounds", type=int, default=None,
                          help="override the scale's round count")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--checkpoint-dir", type=str, default=None,
                          help="snapshot the simulation state here")
    simulate.add_argument("--checkpoint-every", type=int, default=None,
                          help="rounds between snapshots (default: rounds/4)")
    simulate.add_argument("--resume", type=str, default=None, metavar="CKPT",
                          help="resume from a checkpoint directory")
    simulate.add_argument("--output", type=str, default=None,
                          help="write the history JSON here")
    simulate.set_defaults(func=cmd_simulate)

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument("name", nargs="?", default=None,
                     help="experiment name (see --list)")
    fig.add_argument("--list", action="store_true", help="list experiments")
    fig.add_argument("--scale", choices=["smoke", "small", "paper"],
                     default="small")
    fig.add_argument("--seed", type=int, default=0)
    fig.add_argument("--output", type=str, default=None,
                     help="write history JSON here (utility figures)")
    fig.set_defaults(func=cmd_figure)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
