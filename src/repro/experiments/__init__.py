"""Library-level experiment definitions for the paper's figures.

Each figure of the paper is encoded as a named experiment: a workload
builder, the method roster, and a runner returning structured results.
The pytest benchmarks under ``benchmarks/`` print fuller sweeps; this
package exposes the same experiments programmatically (and through
``python -m repro figure <name>``) at a configurable scale.
"""

from repro.experiments.registry import (
    ExperimentResult,
    available_experiments,
    describe_experiment,
    run_experiment,
    run_experiment_multi_seed,
    spec_for_experiment,
)

__all__ = [
    "ExperimentResult",
    "available_experiments",
    "describe_experiment",
    "run_experiment",
    "run_experiment_multi_seed",
    "spec_for_experiment",
]
