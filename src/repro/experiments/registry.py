"""Experiment registry: one entry per reproducible paper artifact.

Every experiment is registered under
:data:`repro.api.registries.EXPERIMENTS` through ``@register_experiment``
and is a function ``(scale, seed) -> ExperimentResult`` where ``scale``
in {"smoke", "small", "paper"} controls workload size:

- ``smoke``: seconds; CI-sized sanity run.
- ``small``: minutes; the default, same as the benchmark suite.
- ``paper``: the paper's parameters where feasible on a laptop (privacy
  computations exactly; utility runs with more rounds/records).

The training-based experiments (fig04, fig06, fig08, fig09, sim01) are
**specs**: :func:`spec_for_experiment` returns the
:class:`repro.api.RunSpec` sweep they expand to, the registered function
merely runs it through :func:`repro.api.run_sweep` and shapes rows -- so
"an experiment" and "a config file" are the same artifact (the committed
``examples/specs/<name>.toml`` files are these specs at small scale, and
a test keeps them in sync).  The purely analytic experiments (fig02,
fig12) stay function-based.

Results carry both human-readable tables and machine-readable rows so the
CLI can print and/or dump JSON; every spec-run history is stamped with
its child spec + canonical hash.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.registries import EXPERIMENTS, register_experiment
from repro.api.spec import RunSpec
from repro.core.trainer import TrainingHistory
from repro.report import comparison_table

SCALES = ("smoke", "small", "paper")


@dataclass
class ExperimentResult:
    """Outcome of one experiment run."""

    name: str
    description: str
    rows: list[dict] = field(default_factory=list)
    histories: list[TrainingHistory] = field(default_factory=list)

    def table(self) -> str:
        if self.histories:
            return comparison_table(self.histories)
        if not self.rows:
            return "(no rows)"
        keys = list(self.rows[0])
        lines = [" ".join(f"{k:>14s}" for k in keys)]
        for row in self.rows:
            cells = []
            for k in keys:
                v = row[k]
                cells.append(f"{v:14.4f}" if isinstance(v, float) else f"{v!s:>14s}")
            lines.append(" ".join(cells))
        return "\n".join(lines)


def _scale_params(scale: str) -> dict:
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}")
    return {
        "smoke": dict(rounds=2, n_records=400, n_users=20, steps=1000),
        "small": dict(rounds=5, n_records=4000, n_users=100, steps=100_000),
        "paper": dict(rounds=20, n_records=25_000, n_users=100, steps=100_000),
    }[scale]


# -- spec-based experiments ----------------------------------------------------
#
# Each entry maps (scale, seed) to the dict tree of a RunSpec sweep.  The
# trainer seed is ``seed + 1`` with the dataset pinned to ``seed`` --
# exactly the legacy registry's construction, so the histories are
# bit-identical to the pre-spec code path.


def _creditcard_dataset(params: dict, seed: int, silos: int = 5) -> dict:
    return {
        "name": "creditcard",
        "users": params["n_users"],
        "silos": silos,
        "records": params["n_records"],
        "test_records": max(200, params["n_records"] // 5),
        "distribution": "zipf",
        "seed": seed,
    }


def _fig04_tree(scale: str, seed: int) -> dict:
    """Creditcard privacy-utility comparison (one representative config)."""
    params = _scale_params(scale)
    return {
        "name": "fig04",
        "seed": seed + 1,
        "rounds": params["rounds"],
        "dataset": _creditcard_dataset(params, seed),
        "sweep": {
            "method": [
                {"name": "default", "local_epochs": 2},
                {"name": "uldp-naive", "sigma": 5.0, "local_epochs": 2},
                {"name": "uldp-group", "group_size": 8, "sigma": 5.0,
                 "local_epochs": 2, "batch_size": 512, "local_lr": 1.0},
                {"name": "uldp-sgd", "sigma": 5.0},
                {"name": "uldp-avg", "sigma": 5.0, "local_epochs": 2},
                {"name": "uldp-avg-w", "sigma": 5.0, "local_epochs": 2},
            ]
        },
    }


def _fig06_tree(scale: str, seed: int) -> dict:
    """HeartDisease comparison (4 fixed silos)."""
    params = _scale_params(scale)
    return {
        "name": "fig06",
        "seed": seed + 1,
        "rounds": params["rounds"],
        "dataset": {
            "name": "heartdisease",
            "users": min(params["n_users"], 50),
            "distribution": "zipf",
            "seed": seed,
        },
        "sweep": {
            "method": [
                {"name": "default", "local_epochs": 2},
                {"name": "uldp-naive", "sigma": 5.0, "local_epochs": 2},
                {"name": "uldp-group", "group_size": "median", "sigma": 5.0,
                 "local_epochs": 2, "batch_size": 256, "local_lr": 1.0},
                {"name": "uldp-avg", "sigma": 5.0, "local_epochs": 2},
                {"name": "uldp-avg-w", "sigma": 5.0, "local_epochs": 2},
            ]
        },
    }


def _fig08_tree(scale: str, seed: int) -> dict:
    """Uniform vs Eq. 3 weighting under skew (|S|=20)."""
    params = _scale_params(scale)
    return {
        "name": "fig08",
        "seed": seed + 1,
        "rounds": params["rounds"],
        "dataset": _creditcard_dataset(params, seed, silos=20),
        "sweep": {
            "method": [
                {"name": "uldp-avg", "sigma": 5.0, "local_epochs": 2},
                {"name": "uldp-avg-w", "sigma": 5.0, "local_epochs": 2},
            ]
        },
    }


def _fig09_tree(scale: str, seed: int) -> dict:
    """User-level sub-sampling sweep (sample_rate=1.0 means no draw)."""
    params = _scale_params(scale)
    params = dict(params, n_users=max(params["n_users"], 100))
    return {
        "name": "fig09",
        "seed": seed + 1,
        "rounds": params["rounds"],
        "dataset": _creditcard_dataset(params, seed),
        "method": {"name": "uldp-avg-w", "sigma": 5.0, "local_epochs": 1},
        "sweep": {"method.sample_rate": [0.1, 0.3, 0.5, 0.7, 1.0]},
    }


def _sim01_tree(scale: str, seed: int) -> dict:
    """Participation-dynamics scenario sweep (the repro.sim runtime)."""
    from repro.sim import available_scenarios

    _scale_params(scale)  # validate the scale tier
    return {
        "name": "sim01",
        "seed": seed,
        "sim": {"scenario": "ideal-sync", "scale": scale},
        "sweep": {"sim.scenario": available_scenarios()},
    }


_SPEC_EXPERIMENTS = {
    "fig04": _fig04_tree,
    "fig06": _fig06_tree,
    "fig08": _fig08_tree,
    "fig09": _fig09_tree,
    "sim01": _sim01_tree,
}


def spec_for_experiment(name: str, scale: str = "small", seed: int = 0) -> RunSpec:
    """The :class:`repro.api.RunSpec` a spec-based experiment expands to.

    Raises ``KeyError`` for unknown names and ``ValueError`` for the
    analytic (function-only) experiments that have no spec form.
    """
    EXPERIMENTS.entry(name)  # uniform unknown-name error
    if name not in _SPEC_EXPERIMENTS:
        raise ValueError(
            f"experiment {name!r} is analytic (not a training run); "
            "it has no RunSpec form"
        )
    return RunSpec.from_dict(_SPEC_EXPERIMENTS[name](scale, seed))


def _run_spec_experiment(name: str, scale: str, seed: int):
    from repro.api.sweep import run_sweep

    spec = spec_for_experiment(name, scale, seed)
    return spec, run_sweep(spec)


@register_experiment("fig04", description="creditcard privacy-utility comparison")
def fig04_creditcard(scale: str, seed: int) -> ExperimentResult:
    params = _scale_params(scale)
    _, sweep = _run_spec_experiment("fig04", scale, seed)
    return ExperimentResult(
        name="fig04",
        description=f"creditcard (zipf, |U|={params['n_users']}, "
        f"{params['rounds']} rounds, sigma=5)",
        histories=sweep.histories,
    )


@register_experiment("fig06", description="heartdisease comparison")
def fig06_heartdisease(scale: str, seed: int) -> ExperimentResult:
    params = _scale_params(scale)
    _, sweep = _run_spec_experiment("fig06", scale, seed)
    n_users = min(params["n_users"], 50)
    return ExperimentResult(
        name="fig06",
        description=f"heartdisease (zipf, |U|={n_users}, {params['rounds']} rounds)",
        histories=sweep.histories,
    )


@register_experiment("fig08", description="weighting strategies under skew")
def fig08_weighting(scale: str, seed: int) -> ExperimentResult:
    params = _scale_params(scale)
    _, sweep = _run_spec_experiment("fig08", scale, seed)
    return ExperimentResult(
        name="fig08",
        description=f"weighting strategies (zipf, |S|=20, {params['rounds']} rounds)",
        histories=sweep.histories,
    )


@register_experiment("fig09", description="user-level sub-sampling sweep")
def fig09_subsampling(scale: str, seed: int) -> ExperimentResult:
    _, sweep = _run_spec_experiment("fig09", scale, seed)
    n_users = sweep.results[0].dataset.n_users if sweep.results else 0
    result = ExperimentResult(
        name="fig09",
        description=f"sub-sampling sweep (|U|={n_users}, sigma=5)",
    )
    for point, run_result in zip(sweep.points, sweep.results):
        final = run_result.history.final
        result.rows.append(
            {
                "q": point.assignments["method.sample_rate"],
                "metric": final.metric,
                "loss": final.loss,
                "epsilon": final.epsilon,
            }
        )
    return result


@register_experiment("sim01", description="participation dynamics scenario sweep")
def sim01_participation(scale: str, seed: int) -> ExperimentResult:
    """Runs every named scenario at the given scale and tabulates final
    utility, honest epsilon, mean per-round participation, and the
    worst-case realised sensitivity -- the table showing what silo
    dropout, stragglers, churn, and async aggregation cost relative to
    the ``ideal-sync`` oracle."""
    _, sweep = _run_spec_experiment("sim01", scale, seed)
    result = ExperimentResult(
        name="sim01",
        description=f"participation dynamics scenario sweep (scale={scale})",
    )
    for point, run_result in zip(sweep.points, sweep.results):
        sim = run_result.simulator
        final = run_result.history.final
        summary = run_result.history.participation_summary()
        assert summary is not None
        releases = sim.method.accountant.releases
        worst = max((r.sensitivity for r in releases), default=1.0)
        result.rows.append(
            {
                "scenario": point.assignments["sim.scenario"],
                "metric": final.metric,
                "epsilon": final.epsilon,
                "mean_silos": summary[0],
                "mean_users": summary[1],
                "max_sensitivity": worst,
            }
        )
    return result


# -- analytic experiments ------------------------------------------------------


@register_experiment("fig02", description="group-privacy conversion blow-up (exact)")
def fig02_group_privacy(scale: str, seed: int) -> ExperimentResult:
    """GDP epsilon vs group size (both conversion routes)."""
    from repro.accounting.conversion import rdp_curve_to_dp
    from repro.accounting.group import (
        group_epsilon_via_normal_dp,
        group_epsilon_via_rdp,
    )
    from repro.accounting.subsampled import subsampled_gaussian_rdp_curve

    params = _scale_params(scale)
    curve = subsampled_gaussian_rdp_curve(0.01, 5.0, steps=params["steps"])
    result = ExperimentResult(
        name="fig02",
        description=f"group-privacy conversion (sigma=5, q=0.01, "
        f"steps={params['steps']:,}, delta=1e-5)",
    )
    for k in (1, 2, 4, 8, 16, 32, 64):
        if k == 1:
            eps_rdp, _ = rdp_curve_to_dp(curve, 1e-5)
            eps_dp = eps_rdp
        else:
            eps_rdp = group_epsilon_via_rdp(curve, k, 1e-5)
            eps_dp = group_epsilon_via_normal_dp(curve, k, 1e-5)
        result.rows.append({"k": k, "eps_rdp_route": eps_rdp, "eps_dp_route": eps_dp})
    return result


@register_experiment("fig12", description="record allocation statistics")
def fig12_allocation(scale: str, seed: int) -> ExperimentResult:
    """Record allocation statistics under both distributions."""
    import numpy as np

    from repro.data import build_creditcard_benchmark

    params = _scale_params(scale)
    result = ExperimentResult(name="fig12", description="record allocation stats")
    for dist in ("uniform", "zipf"):
        fed = build_creditcard_benchmark(
            n_users=params["n_users"], n_silos=5, distribution=dist,
            n_records=params["n_records"], n_test=100, seed=seed,
        )
        hist = fed.histogram()
        totals = hist.sum(axis=0)
        present = totals > 0
        top_frac = (hist[:, present].max(axis=0) / totals[present]).mean()
        result.rows.append(
            {
                "distribution": dist,
                "max_records": float(totals.max()),
                "median_records": float(np.median(totals[present])),
                "top_silo_fraction": float(top_frac),
            }
        )
    return result


def available_experiments() -> list[str]:
    """Names accepted by :func:`run_experiment`."""
    return EXPERIMENTS.names()


def describe_experiment(name: str) -> str:
    """One-line description (unknown names get valid-name suggestions)."""
    return EXPERIMENTS.describe(name)


def run_experiment(name: str, scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Run one named experiment at the given scale."""
    return EXPERIMENTS.get(name)(scale, seed)


def run_experiment_multi_seed(
    name: str, scale: str = "small", seeds: tuple[int, ...] = (0, 1, 2, 3, 4)
) -> ExperimentResult:
    """Run an experiment over several seeds and aggregate mean +/- std.

    Mirrors the paper's protocol ("most of the results are averaged over 5
    runs and the colored area represents the standard deviation").  For
    history-based experiments the final-round metric/loss/epsilon are
    aggregated per method; for row-based experiments every numeric column
    is aggregated per row position.
    """
    import numpy as np

    if not seeds:
        raise ValueError("need at least one seed")
    runs = [run_experiment(name, scale=scale, seed=s) for s in seeds]
    first = runs[0]
    combined = ExperimentResult(
        name=name,
        description=f"{first.description} [mean +/- std over {len(seeds)} seeds]",
    )

    if first.histories:
        for i, history in enumerate(first.histories):
            metrics = [r.histories[i].final.metric for r in runs]
            losses = [r.histories[i].final.loss for r in runs]
            eps = [r.histories[i].final.epsilon for r in runs]
            row: dict = {
                "method": history.method,
                "metric_mean": float(np.mean(metrics)),
                "metric_std": float(np.std(metrics)),
                "loss_mean": float(np.mean(losses)),
                "loss_std": float(np.std(losses)),
            }
            if eps[0] is not None:
                row["epsilon_mean"] = float(np.mean(eps))
                row["epsilon_std"] = float(np.std(eps))
            combined.rows.append(row)
        return combined

    for i, base_row in enumerate(first.rows):
        row = {}
        for key, value in base_row.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                samples = [float(r.rows[i][key]) for r in runs]
                row[f"{key}_mean"] = float(np.mean(samples))
                row[f"{key}_std"] = float(np.std(samples))
            else:
                row[key] = value
        combined.rows.append(row)
    return combined
