"""Experiment registry: one entry per reproducible paper artifact.

Every experiment is a function ``(scale, seed) -> ExperimentResult`` where
``scale`` in {"smoke", "small", "paper"} controls workload size:

- ``smoke``: seconds; CI-sized sanity run.
- ``small``: minutes; the default, same as the benchmark suite.
- ``paper``: the paper's parameters where feasible on a laptop (privacy
  computations exactly; utility runs with more rounds/records).

Results carry both human-readable tables and machine-readable rows so the
CLI can print and/or dump JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core import Default, Trainer, UldpAvg, UldpGroup, UldpNaive, UldpSgd
from repro.core.trainer import TrainingHistory
from repro.data import build_creditcard_benchmark, build_heartdisease_benchmark
from repro.report import comparison_table

SCALES = ("smoke", "small", "paper")


@dataclass
class ExperimentResult:
    """Outcome of one experiment run."""

    name: str
    description: str
    rows: list[dict] = field(default_factory=list)
    histories: list[TrainingHistory] = field(default_factory=list)

    def table(self) -> str:
        if self.histories:
            return comparison_table(self.histories)
        if not self.rows:
            return "(no rows)"
        keys = list(self.rows[0])
        lines = [" ".join(f"{k:>14s}" for k in keys)]
        for row in self.rows:
            cells = []
            for k in keys:
                v = row[k]
                cells.append(f"{v:14.4f}" if isinstance(v, float) else f"{v!s:>14s}")
            lines.append(" ".join(cells))
        return "\n".join(lines)


def _scale_params(scale: str) -> dict:
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}")
    return {
        "smoke": dict(rounds=2, n_records=400, n_users=20, steps=1000),
        "small": dict(rounds=5, n_records=4000, n_users=100, steps=100_000),
        "paper": dict(rounds=20, n_records=25_000, n_users=100, steps=100_000),
    }[scale]


# -- Figure 2 ------------------------------------------------------------------


def fig02_group_privacy(scale: str, seed: int) -> ExperimentResult:
    """GDP epsilon vs group size (both conversion routes)."""
    from repro.accounting.conversion import rdp_curve_to_dp
    from repro.accounting.group import (
        group_epsilon_via_normal_dp,
        group_epsilon_via_rdp,
    )
    from repro.accounting.subsampled import subsampled_gaussian_rdp_curve

    params = _scale_params(scale)
    curve = subsampled_gaussian_rdp_curve(0.01, 5.0, steps=params["steps"])
    result = ExperimentResult(
        name="fig02",
        description=f"group-privacy conversion (sigma=5, q=0.01, "
        f"steps={params['steps']:,}, delta=1e-5)",
    )
    for k in (1, 2, 4, 8, 16, 32, 64):
        if k == 1:
            eps_rdp, _ = rdp_curve_to_dp(curve, 1e-5)
            eps_dp = eps_rdp
        else:
            eps_rdp = group_epsilon_via_rdp(curve, k, 1e-5)
            eps_dp = group_epsilon_via_normal_dp(curve, k, 1e-5)
        result.rows.append({"k": k, "eps_rdp_route": eps_rdp, "eps_dp_route": eps_dp})
    return result


# -- Figure 4 ------------------------------------------------------------------


def fig04_creditcard(scale: str, seed: int) -> ExperimentResult:
    """Creditcard privacy-utility comparison (one representative config)."""
    params = _scale_params(scale)
    fed = build_creditcard_benchmark(
        n_users=params["n_users"], n_silos=5, distribution="zipf",
        n_records=params["n_records"], n_test=max(200, params["n_records"] // 5),
        seed=seed,
    )
    methods = [
        Default(local_epochs=2),
        UldpNaive(noise_multiplier=5.0, local_epochs=2),
        UldpGroup(group_size=8, noise_multiplier=5.0, local_steps=2,
                  expected_batch_size=512, local_lr=1.0),
        UldpSgd(noise_multiplier=5.0),
        UldpAvg(noise_multiplier=5.0, local_epochs=2),
        UldpAvg(noise_multiplier=5.0, local_epochs=2, weighting="proportional"),
    ]
    result = ExperimentResult(
        name="fig04",
        description=f"creditcard (zipf, |U|={params['n_users']}, "
        f"{params['rounds']} rounds, sigma=5)",
    )
    for method in methods:
        history = Trainer(fed, method, rounds=params["rounds"], seed=seed + 1).run()
        result.histories.append(history)
    return result


# -- Figure 8 ------------------------------------------------------------------


def fig08_weighting(scale: str, seed: int) -> ExperimentResult:
    """Uniform vs Eq. 3 weighting under skew (|S|=20)."""
    params = _scale_params(scale)
    fed = build_creditcard_benchmark(
        n_users=params["n_users"], n_silos=20, distribution="zipf",
        n_records=params["n_records"], n_test=max(200, params["n_records"] // 5),
        seed=seed,
    )
    result = ExperimentResult(
        name="fig08",
        description=f"weighting strategies (zipf, |S|=20, {params['rounds']} rounds)",
    )
    for weighting in ("uniform", "proportional"):
        method = UldpAvg(noise_multiplier=5.0, local_epochs=2, weighting=weighting)
        history = Trainer(fed, method, rounds=params["rounds"], seed=seed + 1).run()
        result.histories.append(history)
    return result


# -- Figure 9 ------------------------------------------------------------------


def fig09_subsampling(scale: str, seed: int) -> ExperimentResult:
    """User-level sub-sampling sweep."""
    params = _scale_params(scale)
    fed = build_creditcard_benchmark(
        n_users=max(params["n_users"], 100), n_silos=5, distribution="zipf",
        n_records=params["n_records"], n_test=max(200, params["n_records"] // 5),
        seed=seed,
    )
    result = ExperimentResult(
        name="fig09",
        description=f"sub-sampling sweep (|U|={fed.n_users}, sigma=5)",
    )
    for q in (0.1, 0.3, 0.5, 0.7, 1.0):
        method = UldpAvg(
            noise_multiplier=5.0, local_epochs=1, weighting="proportional",
            user_sample_rate=None if q == 1.0 else q,
        )
        final = Trainer(fed, method, rounds=params["rounds"], seed=seed + 1).run().final
        result.rows.append(
            {"q": q, "metric": final.metric, "loss": final.loss, "epsilon": final.epsilon}
        )
    return result


# -- Figure 6 ------------------------------------------------------------------


def fig06_heartdisease(scale: str, seed: int) -> ExperimentResult:
    """HeartDisease comparison (4 fixed silos)."""
    params = _scale_params(scale)
    fed = build_heartdisease_benchmark(
        n_users=min(params["n_users"], 50), distribution="zipf", seed=seed
    )
    methods = [
        Default(local_epochs=2),
        UldpNaive(noise_multiplier=5.0, local_epochs=2),
        UldpGroup(group_size="median", noise_multiplier=5.0, local_steps=2,
                  expected_batch_size=256, local_lr=1.0),
        UldpAvg(noise_multiplier=5.0, local_epochs=2),
        UldpAvg(noise_multiplier=5.0, local_epochs=2, weighting="proportional"),
    ]
    result = ExperimentResult(
        name="fig06",
        description=f"heartdisease (zipf, |U|={fed.n_users}, {params['rounds']} rounds)",
    )
    for method in methods:
        history = Trainer(fed, method, rounds=params["rounds"], seed=seed + 1).run()
        result.histories.append(history)
    return result


# -- Simulation scenarios ------------------------------------------------------


def sim01_participation(scale: str, seed: int) -> ExperimentResult:
    """Participation-dynamics scenario sweep (the repro.sim runtime).

    Runs every named scenario of :mod:`repro.sim.scenarios` at the given
    scale and tabulates final utility, honest epsilon, mean per-round
    participation, and the worst-case realised sensitivity -- the table
    showing what silo dropout, stragglers, churn, and async aggregation
    cost relative to the ``ideal-sync`` oracle.
    """
    from repro.sim import available_scenarios, run_scenario

    _scale_params(scale)  # validate the scale tier
    result = ExperimentResult(
        name="sim01",
        description=f"participation dynamics scenario sweep (scale={scale})",
    )
    for name in available_scenarios():
        sim = run_scenario(name, scale=scale, seed=seed)
        final = sim.history.final
        summary = sim.history.participation_summary()
        assert summary is not None
        releases = sim.method.accountant.releases
        worst = max((r.sensitivity for r in releases), default=1.0)
        result.rows.append(
            {
                "scenario": name,
                "metric": final.metric,
                "epsilon": final.epsilon,
                "mean_silos": summary[0],
                "mean_users": summary[1],
                "max_sensitivity": worst,
            }
        )
    return result


# -- Figure 12 -----------------------------------------------------------------


def fig12_allocation(scale: str, seed: int) -> ExperimentResult:
    """Record allocation statistics under both distributions."""
    import numpy as np

    params = _scale_params(scale)
    result = ExperimentResult(name="fig12", description="record allocation stats")
    for dist in ("uniform", "zipf"):
        fed = build_creditcard_benchmark(
            n_users=params["n_users"], n_silos=5, distribution=dist,
            n_records=params["n_records"], n_test=100, seed=seed,
        )
        hist = fed.histogram()
        totals = hist.sum(axis=0)
        present = totals > 0
        top_frac = (hist[:, present].max(axis=0) / totals[present]).mean()
        result.rows.append(
            {
                "distribution": dist,
                "max_records": float(totals.max()),
                "median_records": float(np.median(totals[present])),
                "top_silo_fraction": float(top_frac),
            }
        )
    return result


_REGISTRY: dict[str, tuple[str, Callable[[str, int], ExperimentResult]]] = {
    "fig02": ("group-privacy conversion blow-up (exact)", fig02_group_privacy),
    "fig04": ("creditcard privacy-utility comparison", fig04_creditcard),
    "fig06": ("heartdisease comparison", fig06_heartdisease),
    "fig08": ("weighting strategies under skew", fig08_weighting),
    "fig09": ("user-level sub-sampling sweep", fig09_subsampling),
    "fig12": ("record allocation statistics", fig12_allocation),
    "sim01": ("participation dynamics scenario sweep", sim01_participation),
}


def available_experiments() -> list[str]:
    """Names accepted by :func:`run_experiment`."""
    return sorted(_REGISTRY)


def describe_experiment(name: str) -> str:
    if name not in _REGISTRY:
        raise KeyError(f"unknown experiment {name!r}; see available_experiments()")
    return _REGISTRY[name][0]


def run_experiment(name: str, scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Run one named experiment at the given scale."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown experiment {name!r}; see available_experiments()")
    return _REGISTRY[name][1](scale, seed)


def run_experiment_multi_seed(
    name: str, scale: str = "small", seeds: tuple[int, ...] = (0, 1, 2, 3, 4)
) -> ExperimentResult:
    """Run an experiment over several seeds and aggregate mean +/- std.

    Mirrors the paper's protocol ("most of the results are averaged over 5
    runs and the colored area represents the standard deviation").  For
    history-based experiments the final-round metric/loss/epsilon are
    aggregated per method; for row-based experiments every numeric column
    is aggregated per row position.
    """
    import numpy as np

    if not seeds:
        raise ValueError("need at least one seed")
    runs = [run_experiment(name, scale=scale, seed=s) for s in seeds]
    first = runs[0]
    combined = ExperimentResult(
        name=name,
        description=f"{first.description} [mean +/- std over {len(seeds)} seeds]",
    )

    if first.histories:
        for i, history in enumerate(first.histories):
            metrics = [r.histories[i].final.metric for r in runs]
            losses = [r.histories[i].final.loss for r in runs]
            eps = [r.histories[i].final.epsilon for r in runs]
            row: dict = {
                "method": history.method,
                "metric_mean": float(np.mean(metrics)),
                "metric_std": float(np.std(metrics)),
                "loss_mean": float(np.mean(losses)),
                "loss_std": float(np.std(losses)),
            }
            if eps[0] is not None:
                row["epsilon_mean"] = float(np.mean(eps))
                row["epsilon_std"] = float(np.std(eps))
            combined.rows.append(row)
        return combined

    for i, base_row in enumerate(first.rows):
        row = {}
        for key, value in base_row.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                samples = [float(r.rows[i][key]) for r in runs]
                row[f"{key}_mean"] = float(np.mean(samples))
                row[f"{key}_std"] = float(np.std(samples))
            else:
                row[key] = value
        combined.rows.append(row)
    return combined
